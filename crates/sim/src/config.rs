//! Simulated GPU configuration (geometry, capacities, latencies).

/// Cooperative cancellation handle for an in-flight launch. Cloning
/// shares the flag; [`CancelToken::cancel`] makes every simulation loop
/// holding a clone return [`SimError::Cancelled`](crate::SimError) at its
/// next poll point (the top of the per-SM run loop, where the fuel budget
/// is checked too). This is the wall-clock escape hatch `catt serve`
/// threads a request deadline through: fuel bounds simulated cycles, the
/// token bounds real time.
///
/// Equality is identity (`Arc::ptr_eq`) — two tokens are equal only when
/// they are the same flag — and the token never participates in
/// [`GpuConfig::content_digest`]: cancellation is an execution concern,
/// not a simulated parameter, so tokenless and token-carrying configs
/// share cache entries.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(std::sync::Arc<std::sync::atomic::AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation: every launch polling this token stops with
    /// [`SimError::Cancelled`](crate::SimError) at its next poll.
    pub fn cancel(&self) {
        self.0.store(true, std::sync::atomic::Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl PartialEq for CancelToken {
    fn eq(&self, other: &CancelToken) -> bool {
        std::sync::Arc::ptr_eq(&self.0, &other.0)
    }
}

/// The shared-memory carve-out options per SM on Volta, in KB (paper §4.1:
/// "The Nvidia Volta GPU can configure the size of shared memory to be 0,
/// 8, 16, 32, 64, or 96 KB per SM"). The L1D receives the remainder of the
/// 128 KB unified on-chip memory.
pub const SMEM_CONFIGS_KB: [u32; 6] = [0, 8, 16, 32, 64, 96];

/// L1 data-cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Config {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Line size in bytes (128 on Nvidia hardware; the unit the paper's
    /// footprint analysis counts in).
    pub line_bytes: u32,
    /// Set associativity.
    pub assoc: u32,
}

impl L1Config {
    /// Number of sets.
    pub fn num_sets(&self) -> u32 {
        (self.size_bytes / self.line_bytes / self.assoc).max(1)
    }

    /// Number of lines.
    pub fn num_lines(&self) -> u32 {
        self.size_bytes / self.line_bytes
    }
}

/// Latency model, in SM cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latencies {
    /// ALU dependent-use latency.
    pub alu: u64,
    /// Special-function (sqrt/exp/...) latency.
    pub sfu: u64,
    /// L1D hit latency.
    pub l1_hit: u64,
    /// L2 hit latency: an L1D miss that the shared L2 slice serves
    /// (see [`GpuConfig::l2_kb`]). ~193 cycles on Volta per the
    /// Citadel microbenchmark paper; we round to 180 SM cycles.
    pub l2_hit: u64,
    /// DRAM service latency for an L1D miss that also misses the L2
    /// (with `l2_kb = 0` the L2 is disabled and every L1D miss pays
    /// this, which reproduces the pre-L2 model bit-for-bit — the
    /// contention effect comes from the miss *rate* and the off-chip
    /// bandwidth limit, not the precise latency split).
    pub offchip: u64,
    /// Shared-memory access latency.
    pub shared: u64,
    /// Cycles the off-chip port is occupied per 128-byte request: the
    /// inverse per-SM off-chip bandwidth. This is what makes thrashing
    /// hurt beyond raw latency — divergent misses queue behind each
    /// other. 8 cycles/128 B = 16 B/cycle/SM, between Volta's per-SM L2
    /// bandwidth and its DRAM share (a thrashing working set spills past
    /// the L2).
    pub offchip_port: u64,
}

impl Default for Latencies {
    fn default() -> Latencies {
        Latencies {
            alu: 4,
            sfu: 16,
            l1_hit: 28,
            l2_hit: 180,
            offchip: 380,
            shared: 24,
            offchip_port: 8,
        }
    }
}

/// Full simulated-GPU configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Warp size (32 on all Nvidia architectures).
    pub warp_size: u32,
    /// Maximum resident warps per SM (64 on Volta).
    pub max_warps_per_sm: u32,
    /// Maximum resident thread blocks per SM (32 on Volta).
    pub max_tbs_per_sm: u32,
    /// Warp schedulers per SM (4 on Volta).
    pub schedulers_per_sm: u32,
    /// Register file per SM in bytes (256 KB on Volta).
    pub regfile_bytes_per_sm: u32,
    /// Unified on-chip memory per SM in bytes (128 KB on Volta), split
    /// between shared memory and L1D.
    pub onchip_bytes_per_sm: u32,
    /// Shared-memory carve-out in bytes (one of [`SMEM_CONFIGS_KB`] × 1024).
    pub smem_carveout_bytes: u32,
    /// Optional cap on the L1D size in bytes, *below* what the carve-out
    /// would leave. Used for the paper's 32 KB-L1D sensitivity study
    /// (§5.1.3) where the L1D is fixed at 32 KB regardless of carve-out.
    pub l1_cap_bytes: Option<u32>,
    /// L1D line size in bytes.
    pub l1_line_bytes: u32,
    /// L1D associativity.
    pub l1_assoc: u32,
    /// Total shared L2 capacity in KB, modeled as per-SM slices of
    /// `l2_kb × 1024 / num_sms` bytes sitting between each SM's L1D and
    /// DRAM (set-associative, [`L2_ASSOC`]-way, L1-line-sized lines,
    /// MSHR-merged misses). Slicing keeps every SM's timing state
    /// private, which is what preserves the parallel-/sequential-SM
    /// bit-identity guarantee — cross-SM sharing of one L2 image is a
    /// documented substitution (DESIGN.md §3h). `Some(0)` disables the
    /// L2 entirely (bit-identical to the pre-L2 model); `None` follows
    /// the `CATT_L2_KB` environment variable, then the Volta-like
    /// default [`L2_DEFAULT_KB`]. Unlike the execution-strategy knobs,
    /// the resolved capacity is *architectural* and is canonicalized
    /// into [`GpuConfig::content_digest`].
    pub l2_kb: Option<u32>,
    /// Latency model.
    pub latencies: Latencies,
    /// Record the per-instruction off-chip request trace (paper Fig. 2).
    /// Costs memory; off by default.
    pub trace_requests: bool,
    /// Enable DYNCTA-style *dynamic* thread-block throttling (the
    /// hardware-monitoring baseline of paper §2.2): the SM samples its
    /// stall behaviour and raises/lowers the number of schedulable
    /// resident blocks at run time. `None` = plain hardware.
    pub dyncta: Option<DynctaConfig>,
    /// Explicit cycle-fuel budget per launch. `None` derives a generous
    /// default from the memory footprint (see [`GpuConfig::fuel_budget`]);
    /// the `CATT_SIM_FUEL` environment variable overrides both (`0` or
    /// `off` disables the budget entirely). Excluded from
    /// [`GpuConfig::content_digest`] — fuel bounds the simulation, it does
    /// not change its result.
    pub sim_fuel: Option<u64>,
    /// Run the per-SM simulation loops of one launch on parallel worker
    /// threads (snapshot + store-log memory, bit-identical results — see
    /// DESIGN.md "Parallel SM execution"). `None` follows the
    /// `CATT_SIM_SM_PARALLEL` environment variable (`off`/`0`/`false`
    /// disables; default on); `Some` wins over the environment. Excluded
    /// from [`GpuConfig::content_digest`] — parallelism is an execution
    /// strategy, not a simulated parameter.
    pub sm_parallel: Option<bool>,
    /// Cap on the number of SM worker threads per launch. `None` follows
    /// `CATT_SIM_SM_THREADS`, and failing that derives
    /// `available_parallelism / active engine workers` (min 1) so a sweep
    /// of W engine workers × S SM threads cannot oversubscribe the
    /// machine (see [`engine_workers_hint`]). Excluded from
    /// [`GpuConfig::content_digest`].
    pub sm_threads: Option<usize>,
    /// Let parallel-path workers claim SM tasks through the work-stealing
    /// dispatcher (heaviest SMs seeded first, idle workers steal from the
    /// fullest peer) instead of the shared ascending-id counter. Results
    /// are bit-identical either way — outcomes commit in ascending SM-id
    /// order regardless of who simulated what — so this is purely a
    /// wall-clock knob for skewed launches where one SM dominates. `None`
    /// follows the `CATT_SIM_STEAL` environment variable
    /// (`off`/`0`/`false`/`no` disables; default on); `Some` wins over
    /// the environment. Excluded from [`GpuConfig::content_digest`].
    pub sm_steal: Option<bool>,
    /// Record a full [`crate::profile::LaunchProfile`] per launch (stall
    /// breakdowns, per-set L1 counters, phase timelines). `None` follows
    /// the `CATT_PROFILE` environment variable (`on`/`1`/`true`/`yes`
    /// enables; default off); `Some` wins over the environment. Profiled
    /// and unprofiled runs are bit-identical (the sink only observes), so
    /// the knob is excluded from [`GpuConfig::content_digest`]; profiled
    /// runs bypass the simulation cache so the profile is always produced
    /// by a real run (see `catt_core::engine`).
    pub profile: Option<bool>,
    /// Record the windowed miss curve ([`crate::profile::MissWindow`])
    /// inside profiled launches. The per-window bookkeeping is the
    /// single most expensive part of the profiling sink (BENCH_sim.json:
    /// 1.74× geomean profiled-run overhead, 2.6× on GSMV), and the
    /// autotuner only needs the aggregate stall/L1/L2 counters, so
    /// window recording is opt-in. `None` follows the
    /// `CATT_PROFILE_WINDOWS` environment variable
    /// (`on`/`1`/`true`/`yes` enables; default off); `Some` wins over
    /// the environment. Observational only — excluded from
    /// [`GpuConfig::content_digest`].
    pub profile_windows: Option<bool>,
    /// Run launches under the dynamic sanitizer (see [`crate::sanitize`]):
    /// barrier-divergence, inter-block race, wild-read and shared-memory
    /// overflow detection, surfaced as
    /// [`SimError::Sanitizer`](crate::SimError::Sanitizer). `None` follows
    /// the `CATT_SANITIZE` environment variable (`on`/`1`/`true`/`yes`
    /// enables; default off); `Some` wins over the environment. The
    /// sanitizer only observes — a clean sanitized launch is bit-identical
    /// to an unsanitized one — so the knob is excluded from
    /// [`GpuConfig::content_digest`]; sanitized runs bypass the
    /// simulation cache (a cache hit would skip the checks) and run on
    /// the sequential SM path so one launch-wide state sees every block.
    pub sanitize: Option<bool>,
    /// Cooperative cancellation token polled at the top of every SM run
    /// loop (next to the fuel check). `None` — the default everywhere
    /// outside `catt serve` — costs one pointer test per loop iteration.
    /// A fired token surfaces as
    /// [`SimError::Cancelled`](crate::SimError::Cancelled). Excluded from
    /// [`GpuConfig::content_digest`]: cancellation bounds wall-clock time,
    /// it never changes the result of a launch that completes.
    pub cancel: Option<CancelToken>,
}

/// Baseline cycle allowance of the derived fuel budget (covers dispatch
/// and small kernels regardless of footprint).
pub const FUEL_BASE: u64 = 1 << 24;

/// Derived-fuel cycles granted per byte of allocated global memory. Real
/// workloads re-walk their footprint many times; 4096 cycles/byte is
/// orders of magnitude above any legitimate workload in this repo while
/// still terminating a runaway loop in bounded time.
pub const FUEL_PER_BYTE: u64 = 4096;

/// Default total shared L2 capacity in KB when neither
/// [`GpuConfig::l2_kb`] nor `CATT_L2_KB` is set: Volta's 6 MB.
pub const L2_DEFAULT_KB: u32 = 6144;

/// Associativity of each SM's L2 slice (Volta's L2 is 16-way).
pub const L2_ASSOC: u32 = 16;

/// Parameters of the DYNCTA-style dynamic throttler (Kayiran et al.,
/// PACT'13, as summarized in the paper's §2.2): sample the fraction of
/// issue slots lost to stalls over a window; if the SM looks
/// memory-congested, pause one resident block, and if it looks
/// underutilized, resume one. This is the *reactive* scheme CATT's
/// compile-time decisions are contrasted against — it needs warm-up
/// windows before converging and re-converges on every phase change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynctaConfig {
    /// Sampling window in cycles.
    pub window: u64,
    /// Stall fraction above which a block is paused (memory congestion).
    pub t_high: f64,
    /// Stall fraction below which a paused block is resumed.
    pub t_low: f64,
}

impl Default for DynctaConfig {
    fn default() -> DynctaConfig {
        DynctaConfig {
            window: 4096,
            t_high: 0.7,
            t_low: 0.3,
        }
    }
}

impl GpuConfig {
    /// Titan V (Volta)-like preset, the paper's Table 1: 80 SMs, 256 KB
    /// register file per SM, 128 KB unified on-chip memory per SM.
    pub fn titan_v() -> GpuConfig {
        GpuConfig {
            num_sms: 80,
            warp_size: 32,
            max_warps_per_sm: 64,
            max_tbs_per_sm: 32,
            schedulers_per_sm: 4,
            regfile_bytes_per_sm: 256 * 1024,
            onchip_bytes_per_sm: 128 * 1024,
            smem_carveout_bytes: 0,
            l1_cap_bytes: None,
            l1_line_bytes: 128,
            l1_assoc: 4,
            l2_kb: None,
            latencies: Latencies::default(),
            trace_requests: false,
            dyncta: None,
            sim_fuel: None,
            sm_parallel: None,
            sm_threads: None,
            sm_steal: None,
            profile: None,
            profile_windows: None,
            sanitize: None,
            cancel: None,
        }
    }

    /// A single-SM Titan V, the default evaluation vehicle: cache
    /// contention is a per-SM phenomenon, and simulating one SM with the
    /// thread blocks it would receive reproduces it at a fraction of the
    /// cost (see DESIGN.md "Substitutions").
    pub fn titan_v_1sm() -> GpuConfig {
        GpuConfig {
            num_sms: 1,
            ..GpuConfig::titan_v()
        }
    }

    /// A deliberately small GPU for unit tests: 1 SM, 8 warp slots,
    /// 4 KB L1D — so tests can provoke capacity effects with tiny inputs.
    pub fn small() -> GpuConfig {
        GpuConfig {
            num_sms: 1,
            warp_size: 32,
            max_warps_per_sm: 8,
            max_tbs_per_sm: 4,
            schedulers_per_sm: 2,
            regfile_bytes_per_sm: 256 * 1024,
            onchip_bytes_per_sm: 128 * 1024,
            smem_carveout_bytes: 0,
            l1_cap_bytes: Some(4 * 1024),
            l1_line_bytes: 128,
            l1_assoc: 4,
            l2_kb: Some(64),
            latencies: Latencies::default(),
            trace_requests: false,
            dyncta: None,
            sim_fuel: None,
            sm_parallel: None,
            sm_threads: None,
            sm_steal: None,
            profile: None,
            profile_windows: None,
            sanitize: None,
            cancel: None,
        }
    }

    /// Resolve the per-launch cycle-fuel budget for a kernel touching
    /// `footprint_bytes` of global memory. Resolution order:
    ///
    /// 1. a `fuel=C` entry in the `CATT_FAULT_PLAN` environment variable
    ///    (the fault-injection harness, see `catt_core::fault`);
    /// 2. `CATT_SIM_FUEL` environment variable (`0`/`off` = unlimited);
    /// 3. [`GpuConfig::sim_fuel`];
    /// 4. derived default: [`FUEL_BASE`] `+ footprint_bytes ×`
    ///    [`FUEL_PER_BYTE`] (saturating).
    ///
    /// Returns `None` for "no budget".
    pub fn fuel_budget(&self, footprint_bytes: u64) -> Option<u64> {
        if let Ok(plan) = std::env::var("CATT_FAULT_PLAN") {
            for entry in plan.split(',') {
                if let Some(c) = entry.trim().strip_prefix("fuel=") {
                    if let Ok(n) = c.trim().parse::<u64>() {
                        return Some(n);
                    }
                }
            }
        }
        if let Ok(v) = std::env::var("CATT_SIM_FUEL") {
            let v = v.trim();
            if v == "0" || v.eq_ignore_ascii_case("off") {
                return None;
            }
            if let Ok(n) = v.parse::<u64>() {
                return Some(n);
            }
        }
        if let Some(n) = self.sim_fuel {
            return Some(n);
        }
        Some(FUEL_BASE.saturating_add(footprint_bytes.saturating_mul(FUEL_PER_BYTE)))
    }

    /// Configure the shared-memory carve-out to the smallest option (in
    /// [`SMEM_CONFIGS_KB`]) that still provides `needed_bytes` of shared
    /// memory, maximizing the L1D with the rest (paper §4.1, Eq. 4's
    /// consumer). Returns `None` if the requirement exceeds 96 KB.
    pub fn with_smem_for(mut self, needed_bytes: u32) -> Option<GpuConfig> {
        let kb = SMEM_CONFIGS_KB
            .iter()
            .copied()
            .find(|kb| kb * 1024 >= needed_bytes)?;
        self.smem_carveout_bytes = kb * 1024;
        Some(self)
    }

    /// The L1D capacity in bytes implied by the carve-out (and the
    /// optional explicit cap).
    pub fn l1d_bytes(&self) -> u32 {
        let from_carveout = self.onchip_bytes_per_sm - self.smem_carveout_bytes;
        match self.l1_cap_bytes {
            Some(cap) => cap.min(from_carveout),
            None => from_carveout,
        }
    }

    /// L1D geometry.
    pub fn l1_config(&self) -> L1Config {
        L1Config {
            size_bytes: self.l1d_bytes(),
            line_bytes: self.l1_line_bytes,
            assoc: self.l1_assoc,
        }
    }

    /// Resolve the total shared L2 capacity in KB. Resolution order:
    /// [`GpuConfig::l2_kb`] (explicit config wins, so tests and CLI
    /// flags are immune to ambient environment), then the `CATT_L2_KB`
    /// environment variable (`0` or `off` disables), then the
    /// Volta-like default [`L2_DEFAULT_KB`].
    pub fn l2_kb_resolved(&self) -> u32 {
        if let Some(kb) = self.l2_kb {
            return kb;
        }
        if let Ok(v) = std::env::var("CATT_L2_KB") {
            let v = v.trim();
            if v.eq_ignore_ascii_case("off") {
                return 0;
            }
            if let Ok(n) = v.parse::<u32>() {
                return n;
            }
        }
        L2_DEFAULT_KB
    }

    /// Geometry of one SM's slice of the shared L2 (capacity
    /// `l2_kb / num_sms`, [`L2_ASSOC`]-way, L1-line-sized lines), or
    /// `None` when the L2 is disabled: resolved capacity 0, or a slice
    /// too small to hold even one full set. With `None` every L1D miss
    /// goes straight to DRAM at `latencies.offchip`, bit-identical to
    /// the pre-L2 model.
    pub fn l2_slice_config(&self) -> Option<L1Config> {
        let total = self.l2_kb_resolved() as u64 * 1024;
        let slice = (total / self.num_sms.max(1) as u64) as u32;
        if slice < self.l1_line_bytes * L2_ASSOC {
            return None;
        }
        Some(L1Config {
            size_bytes: slice,
            line_bytes: self.l1_line_bytes,
            assoc: L2_ASSOC,
        })
    }

    /// Register file capacity in 32-bit registers per SM.
    pub fn regs_per_sm(&self) -> u32 {
        self.regfile_bytes_per_sm / 4
    }

    /// Whether this launch may run its SMs on parallel worker threads.
    /// Resolution order: [`GpuConfig::sm_parallel`] (explicit config
    /// wins, so tests and CLI flags are immune to ambient environment),
    /// then `CATT_SIM_SM_PARALLEL` (`off`/`0`/`false`/`no` disables,
    /// anything else — e.g. `on` — enables), then the default: on *iff*
    /// the effective SM thread budget exceeds 1. On a one-thread budget
    /// (single-core host, or a sweep whose engine workers already own
    /// every core) the parallel path's snapshot + store-log machinery is
    /// pure overhead — BENCH_sim.json measured it as a net loss — so the
    /// sequential path is the default there. Parallel and sequential
    /// execution produce bit-identical results (see DESIGN.md), so this
    /// is purely a throughput knob.
    pub fn sm_parallel_enabled(&self) -> bool {
        if let Some(explicit) = self.sm_parallel {
            return explicit;
        }
        match std::env::var("CATT_SIM_SM_PARALLEL") {
            Ok(v) => !matches!(
                v.trim().to_ascii_lowercase().as_str(),
                "off" | "0" | "false" | "no"
            ),
            Err(_) => self.sm_thread_budget() > 1,
        }
    }

    /// Resolve the SM worker-thread budget for one launch (≥ 1).
    /// Resolution order: [`GpuConfig::sm_threads`], then
    /// `CATT_SIM_SM_THREADS`, then the derived default
    /// `available_parallelism / active engine workers` — so W engine
    /// workers each running a launch get `cores / W` SM threads apiece
    /// instead of W × cores oversubscription.
    pub fn sm_thread_budget(&self) -> usize {
        if let Some(n) = self.sm_threads {
            return n.max(1);
        }
        if let Some(n) = std::env::var("CATT_SIM_SM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return n;
        }
        let avail = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        (avail / engine_workers_hint().max(1)).max(1)
    }

    /// Whether parallel-path SM workers claim tasks through the
    /// work-stealing dispatcher. Resolution order: [`GpuConfig::sm_steal`]
    /// (explicit config wins, so tests and CLI flags are immune to
    /// ambient environment), then `CATT_SIM_STEAL`
    /// (`off`/`0`/`false`/`no` disables), then the default: on. Purely a
    /// wall-clock knob — results are bit-identical either way.
    pub fn sm_steal_enabled(&self) -> bool {
        if let Some(explicit) = self.sm_steal {
            return explicit;
        }
        match std::env::var("CATT_SIM_STEAL") {
            Ok(v) => !matches!(
                v.trim().to_ascii_lowercase().as_str(),
                "off" | "0" | "false" | "no"
            ),
            Err(_) => true,
        }
    }

    /// Whether launches under this config record a
    /// [`crate::profile::LaunchProfile`]. Resolution order:
    /// [`GpuConfig::profile`] (explicit config wins, so tests and CLI
    /// flags are immune to ambient environment), then the `CATT_PROFILE`
    /// environment variable (`on`/`1`/`true`/`yes` enables), then the
    /// default: off. Profiling never perturbs results — stats and memory
    /// are bit-identical either way — so this is purely an observability
    /// knob.
    pub fn profile_enabled(&self) -> bool {
        if let Some(explicit) = self.profile {
            return explicit;
        }
        match std::env::var("CATT_PROFILE") {
            Ok(v) => matches!(
                v.trim().to_ascii_lowercase().as_str(),
                "on" | "1" | "true" | "yes"
            ),
            Err(_) => false,
        }
    }

    /// Whether profiled launches under this config record the windowed
    /// miss curve (see [`crate::profile::MissWindow`]). Resolution
    /// order: [`GpuConfig::profile_windows`] (explicit config wins),
    /// then the `CATT_PROFILE_WINDOWS` environment variable
    /// (`on`/`1`/`true`/`yes` enables), then the default: off. The
    /// aggregate stall/L1/L2 counters are always recorded when
    /// profiling is on; only the per-window curve is gated, because it
    /// dominates the profiling overhead.
    pub fn profile_windows_enabled(&self) -> bool {
        if let Some(explicit) = self.profile_windows {
            return explicit;
        }
        match std::env::var("CATT_PROFILE_WINDOWS") {
            Ok(v) => matches!(
                v.trim().to_ascii_lowercase().as_str(),
                "on" | "1" | "true" | "yes"
            ),
            Err(_) => false,
        }
    }

    /// Whether launches under this config run the dynamic sanitizer (see
    /// [`crate::sanitize`]). Resolution order: [`GpuConfig::sanitize`]
    /// (explicit config wins, so tests and CLI flags are immune to
    /// ambient environment), then the `CATT_SANITIZE` environment
    /// variable (`on`/`1`/`true`/`yes` enables), then the default: off.
    /// A clean sanitized launch is bit-identical to an unsanitized one —
    /// the sanitizer only observes, and stops the launch at the first
    /// finding.
    pub fn sanitize_enabled(&self) -> bool {
        if let Some(explicit) = self.sanitize {
            return explicit;
        }
        match std::env::var("CATT_SANITIZE") {
            Ok(v) => matches!(
                v.trim().to_ascii_lowercase().as_str(),
                "on" | "1" | "true" | "yes"
            ),
            Err(_) => false,
        }
    }
}

/// Number of engine worker threads currently running simulation jobs in
/// this process. `catt_core::engine` raises it for the duration of each
/// `run_jobs` batch; the per-launch SM thread budget divides
/// `available_parallelism` by it (see [`GpuConfig::sm_thread_budget`]).
static ACTIVE_ENGINE_WORKERS: std::sync::atomic::AtomicUsize =
    std::sync::atomic::AtomicUsize::new(0);

/// Register `n` additional active engine workers (call when a worker
/// batch starts; pair with [`remove_active_engine_workers`]). Counting —
/// rather than set/restore — keeps concurrent batches correct: two
/// overlapping pools of 2 workers really are 4 threads competing for the
/// machine.
pub fn add_active_engine_workers(n: usize) {
    ACTIVE_ENGINE_WORKERS.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
}

/// Deregister `n` active engine workers (batch finished).
pub fn remove_active_engine_workers(n: usize) {
    ACTIVE_ENGINE_WORKERS.fetch_sub(n, std::sync::atomic::Ordering::Relaxed);
}

/// The current engine-worker count used to divide the machine between
/// sweep-level and SM-level parallelism (≥ 1; 1 when no engine batch is
/// running, i.e. single-launch paths get the whole machine).
pub fn engine_workers_hint() -> usize {
    ACTIVE_ENGINE_WORKERS
        .load(std::sync::atomic::Ordering::Relaxed)
        .max(1)
}

/// RAII registration of `n` active engine workers: deregisters on drop,
/// so an early return or panic between batch start and end cannot leak
/// the count (a leaked hint permanently shrinks every later
/// [`GpuConfig::sm_thread_budget`] in the process). Prefer this over the
/// raw [`add_active_engine_workers`]/[`remove_active_engine_workers`]
/// pair.
#[must_use = "the guard deregisters the workers when dropped"]
pub struct EngineWorkersGuard {
    n: usize,
}

/// Register `n` active engine workers for the lifetime of the returned
/// guard.
pub fn engine_workers_guard(n: usize) -> EngineWorkersGuard {
    add_active_engine_workers(n);
    EngineWorkersGuard { n }
}

impl Drop for EngineWorkersGuard {
    fn drop(&mut self) {
        remove_active_engine_workers(self.n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_v_matches_table1() {
        let c = GpuConfig::titan_v();
        assert_eq!(c.num_sms, 80);
        assert_eq!(c.regfile_bytes_per_sm, 256 * 1024);
        // 0 KB smem → max 128 KB L1D; 96 KB smem → 32 KB L1D.
        assert_eq!(c.l1d_bytes(), 128 * 1024);
        let c96 = c.clone().with_smem_for(96 * 1024).unwrap();
        assert_eq!(c96.l1d_bytes(), 32 * 1024);
    }

    #[test]
    fn smem_carveout_picks_smallest_fit() {
        let c = GpuConfig::titan_v();
        assert_eq!(c.clone().with_smem_for(0).unwrap().smem_carveout_bytes, 0);
        assert_eq!(
            c.clone().with_smem_for(1).unwrap().smem_carveout_bytes,
            8 * 1024
        );
        assert_eq!(
            c.clone()
                .with_smem_for(8 * 1024)
                .unwrap()
                .smem_carveout_bytes,
            8 * 1024
        );
        assert_eq!(
            c.clone()
                .with_smem_for(8 * 1024 + 1)
                .unwrap()
                .smem_carveout_bytes,
            16 * 1024
        );
        assert!(c.clone().with_smem_for(97 * 1024).is_none());
    }

    #[test]
    fn l1_cap_clamps() {
        let mut c = GpuConfig::titan_v();
        c.l1_cap_bytes = Some(32 * 1024);
        assert_eq!(c.l1d_bytes(), 32 * 1024);
        // Cap never *raises* the size.
        c.smem_carveout_bytes = 96 * 1024;
        c.l1_cap_bytes = Some(64 * 1024);
        assert_eq!(c.l1d_bytes(), 32 * 1024);
    }

    #[test]
    fn fuel_resolution_order() {
        // No env in unit tests (the env paths are covered by the
        // dedicated integration tests): explicit field wins, otherwise
        // the budget derives from the footprint.
        let mut c = GpuConfig::small();
        assert_eq!(c.fuel_budget(0), Some(FUEL_BASE));
        assert_eq!(c.fuel_budget(10), Some(FUEL_BASE + 10 * FUEL_PER_BYTE));
        c.sim_fuel = Some(500);
        assert_eq!(c.fuel_budget(1 << 20), Some(500));
        // Saturates instead of overflowing on absurd footprints.
        c.sim_fuel = None;
        assert_eq!(c.fuel_budget(u64::MAX), Some(u64::MAX));
    }

    #[test]
    fn l1_geometry() {
        let c = GpuConfig::small();
        let l1 = c.l1_config();
        assert_eq!(l1.num_lines(), 32);
        assert_eq!(l1.num_sets(), 8);
    }

    #[test]
    fn explicit_sm_parallel_config_wins() {
        // Env paths are covered by the integration suites; unit tests
        // only pin the explicit-config precedence.
        let mut c = GpuConfig::small();
        c.sm_parallel = Some(false);
        assert!(!c.sm_parallel_enabled());
        c.sm_parallel = Some(true);
        assert!(c.sm_parallel_enabled());
    }

    #[test]
    fn explicit_sm_steal_config_wins() {
        // Env paths are covered by the parallel_sm integration suite;
        // unit tests only pin the explicit-config precedence and the
        // default.
        let mut c = GpuConfig::small();
        if std::env::var("CATT_SIM_STEAL").is_err() {
            assert!(c.sm_steal_enabled(), "stealing is on by default");
        }
        c.sm_steal = Some(false);
        assert!(!c.sm_steal_enabled());
        c.sm_steal = Some(true);
        assert!(c.sm_steal_enabled());
    }

    #[test]
    fn explicit_profile_config_wins() {
        // Env paths are covered by the profile integration suites; unit
        // tests only pin the explicit-config precedence and the default.
        let mut c = GpuConfig::small();
        if std::env::var("CATT_PROFILE").is_err() {
            assert!(!c.profile_enabled(), "profiling is off by default");
        }
        c.profile = Some(true);
        assert!(c.profile_enabled());
        c.profile = Some(false);
        assert!(!c.profile_enabled());
    }

    #[test]
    fn explicit_sanitize_config_wins() {
        // Env paths are covered by the sanitizer integration suite; unit
        // tests only pin the explicit-config precedence and the default.
        let mut c = GpuConfig::small();
        if std::env::var("CATT_SANITIZE").is_err() {
            assert!(!c.sanitize_enabled(), "sanitizer is off by default");
        }
        c.sanitize = Some(true);
        assert!(c.sanitize_enabled());
        c.sanitize = Some(false);
        assert!(!c.sanitize_enabled());
    }

    #[test]
    fn explicit_sm_thread_budget_wins_and_clamps() {
        let mut c = GpuConfig::small();
        c.sm_threads = Some(6);
        assert_eq!(c.sm_thread_budget(), 6);
        c.sm_threads = Some(0);
        assert_eq!(c.sm_thread_budget(), 1, "budget is clamped to >= 1");
        c.sm_threads = None;
        assert!(c.sm_thread_budget() >= 1);
    }

    #[test]
    fn engine_worker_accounting_divides_the_derived_budget() {
        // This test is the only unit-test user of the counter in this
        // process, so exact arithmetic is safe.
        assert_eq!(engine_workers_hint(), 1, "idle process counts as 1");
        add_active_engine_workers(3);
        assert_eq!(engine_workers_hint(), 3);
        add_active_engine_workers(2);
        assert_eq!(engine_workers_hint(), 5, "concurrent batches sum");
        remove_active_engine_workers(5);
        assert_eq!(engine_workers_hint(), 1);
        // With many engine workers active, the derived SM budget bottoms
        // out at 1 instead of underflowing (skipped when the environment
        // pins an explicit thread count).
        add_active_engine_workers(1_000);
        if std::env::var("CATT_SIM_SM_THREADS").is_err() {
            let c = GpuConfig::small();
            assert_eq!(c.sm_thread_budget(), 1);
        }
        remove_active_engine_workers(1_000);
        // The RAII guard restores the count on drop — including an
        // unwinding drop, which is what makes it leak-proof where the
        // raw add/remove pair was not.
        {
            let _g = engine_workers_guard(4);
            assert_eq!(engine_workers_hint(), 4);
        }
        assert_eq!(engine_workers_hint(), 1, "guard restored on drop");
        let unwound = std::panic::catch_unwind(|| {
            let _g = engine_workers_guard(7);
            assert_eq!(engine_workers_hint(), 7);
            panic!("boom");
        });
        assert!(unwound.is_err());
        assert_eq!(engine_workers_hint(), 1, "guard restored across unwind");
    }
}
