//! Occupancy model: maximum resident thread blocks per SM (paper Eq. 1–3).
//!
//! The same equations drive both the simulator's thread-block dispatcher
//! and CATT's static analysis in `catt-core`, so decisions and simulated
//! behaviour agree by construction.

use crate::config::GpuConfig;

/// Per-limiter breakdown of the occupancy computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupancyLimits {
    /// Eq. 1: `#TB_shm = SIZE_shm_SM / USE_shm_TB` (`u32::MAX` when the
    /// kernel uses no shared memory).
    pub tb_shm: u32,
    /// Eq. 2: `#TB_reg = SIZE_reg_SM / USE_reg_TB`.
    pub tb_reg: u32,
    /// Warp-slot limit: `max_warps_per_sm / #Warps_TB`.
    pub tb_warps: u32,
    /// Hardware TB limit per SM.
    pub tb_hw: u32,
}

impl OccupancyLimits {
    /// Eq. 3: `#TB_SM = Min(...)`.
    pub fn resident_tbs(&self) -> u32 {
        self.tb_shm
            .min(self.tb_reg)
            .min(self.tb_warps)
            .min(self.tb_hw)
    }
}

/// Compute the occupancy limits for a kernel with `smem_per_tb` bytes of
/// shared memory, `regs_per_thread` registers, and `threads_per_tb`
/// threads per block, on `config`.
///
/// Returns blocks-per-SM of 0 when a single block cannot fit (e.g. its
/// shared memory exceeds the carve-out) — an invalid launch.
pub fn max_resident_tbs(
    config: &GpuConfig,
    smem_per_tb: u32,
    regs_per_thread: u32,
    threads_per_tb: u32,
) -> OccupancyLimits {
    let tb_shm = config
        .smem_carveout_bytes
        .checked_div(smem_per_tb)
        .unwrap_or(u32::MAX);
    let regs_per_tb = regs_per_thread.max(1) * threads_per_tb.max(1);
    let tb_reg = config.regs_per_sm() / regs_per_tb;
    let warps_per_tb = threads_per_tb.max(1).div_ceil(config.warp_size);
    let tb_warps = config.max_warps_per_sm / warps_per_tb;
    OccupancyLimits {
        tb_shm,
        tb_reg,
        tb_warps,
        tb_hw: config.max_tbs_per_sm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_smem_unlimited_by_eq1() {
        let c = GpuConfig::titan_v();
        let l = max_resident_tbs(&c, 0, 32, 256);
        assert_eq!(l.tb_shm, u32::MAX);
        // 64 warps / 8 warps per TB = 8 resident blocks.
        assert_eq!(l.tb_warps, 8);
        assert_eq!(l.resident_tbs(), 8);
    }

    /// Paper Fig. 5: 48 KB dummy shared per TB on a 96 KB carve-out
    /// limits the SM to 2 resident blocks.
    #[test]
    fn fig5_dummy_smem_limits_to_two_tbs() {
        let c = GpuConfig::titan_v().with_smem_for(96 * 1024).unwrap();
        let l = max_resident_tbs(&c, 48 * 1024, 32, 256);
        assert_eq!(l.tb_shm, 2);
        assert_eq!(l.resident_tbs(), 2);
    }

    #[test]
    fn register_pressure_limits() {
        let c = GpuConfig::titan_v();
        // 256 regs/thread × 256 threads = 65536 regs = whole file → 1 TB.
        let l = max_resident_tbs(&c, 0, 256, 256);
        assert_eq!(l.tb_reg, 1);
        assert_eq!(l.resident_tbs(), 1);
    }

    #[test]
    fn smem_larger_than_carveout_gives_zero() {
        let c = GpuConfig::titan_v().with_smem_for(8 * 1024).unwrap();
        let l = max_resident_tbs(&c, 64 * 1024, 16, 128);
        assert_eq!(l.resident_tbs(), 0);
    }

    #[test]
    fn hw_limit_caps_small_blocks() {
        let c = GpuConfig::titan_v();
        // 32-thread blocks: warp limit allows 64, HW caps at 32.
        let l = max_resident_tbs(&c, 0, 16, 32);
        assert_eq!(l.tb_warps, 64);
        assert_eq!(l.resident_tbs(), 32);
    }
}
