//! Set-associative L1 data cache with LRU replacement and MSHR merging.
//!
//! The cache is a *tag store only* — data lives in [`crate::mem::GlobalMem`]
//! and functional loads complete at issue time; the cache determines
//! *timing* (hit vs. miss latency) and the *statistics* the paper reports
//! (L1D hit rate, off-chip request counts).
//!
//! Misses to a line that is already in flight merge into the existing MSHR
//! entry instead of issuing a second off-chip request, which is what makes
//! inter-warp spatial locality effective even under misses.

use crate::config::L1Config;

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u32,
    /// Cycle at which the fill completes (0 when long since resident).
    ready: u64,
    /// LRU timestamp.
    last_use: u64,
    valid: bool,
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the access hit (including hits on in-flight lines that
    /// merge into an MSHR — counted as hits-under-miss).
    pub hit: bool,
    /// Whether a new off-chip request was generated.
    pub offchip: bool,
    /// Cycle at which the data is available to the requester.
    pub data_ready: u64,
    /// Set the line maps to (after XOR-folded hashing) — the heat-map
    /// coordinate the profiling sink records.
    pub set: u32,
    /// Whether the access displaced a valid resident line (miss into a
    /// full set).
    pub evicted: bool,
}

/// L1 data cache (tag store + MSHR timing).
pub struct L1Cache {
    cfg: L1Config,
    /// All lines in one contiguous allocation: set `s` occupies
    /// `lines[s * assoc .. (s + 1) * assoc]`. One flat `Vec` instead of a
    /// `Vec<Vec<Line>>` keeps each set's ways on a single cache line of
    /// the *host* and kills the per-access pointer chase — this structure
    /// is probed on every simulated load and store.
    lines: Vec<Line>,
    assoc: usize,
    use_counter: u64,
    /// Statistics: load accesses.
    pub accesses: u64,
    /// Load accesses that hit (fully resident lines).
    pub hits: u64,
    /// Load accesses merged into an in-flight fill.
    pub mshr_merges: u64,
    /// Off-chip (L2/DRAM) requests generated, loads + stores.
    pub offchip_requests: u64,
    /// Valid resident lines displaced by fills (capacity/conflict
    /// pressure; cold fills into invalid ways do not count).
    pub evictions: u64,
}

impl L1Cache {
    /// Empty cache with the given geometry.
    pub fn new(cfg: L1Config) -> L1Cache {
        let assoc = (cfg.assoc as usize).max(1);
        let lines = vec![
            Line {
                tag: 0,
                ready: 0,
                last_use: 0,
                valid: false,
            };
            cfg.num_sets() as usize * assoc
        ];
        L1Cache {
            cfg,
            lines,
            assoc,
            use_counter: 0,
            accesses: 0,
            hits: 0,
            mshr_merges: 0,
            offchip_requests: 0,
            evictions: 0,
        }
    }

    /// The geometry.
    pub fn config(&self) -> L1Config {
        self.cfg
    }

    /// Set index with XOR-folded hashing. GPU L1s hash the set index so
    /// that power-of-two strides (ubiquitous in row-major matrix kernels)
    /// do not collapse onto a few sets; without this, a kernel like ATAX
    /// (row stride 2 KB) suffers pathological conflict misses that no real
    /// device shows. The tag is the full line address.
    fn set_and_tag(&self, line_addr: u32) -> (usize, u32) {
        let n = self.cfg.num_sets();
        if n.is_power_of_two() && n > 1 {
            let bits = n.trailing_zeros();
            let mut x = line_addr;
            let mut idx = 0u32;
            while x != 0 {
                idx ^= x & (n - 1);
                x >>= bits;
            }
            (idx as usize, line_addr)
        } else {
            ((line_addr % n) as usize, line_addr)
        }
    }

    /// Access a *load* to the 128-byte line containing `byte_addr` at time
    /// `now`. `fill_latency` is the full off-chip service latency the fill
    /// would take (the caller adds port queueing before calling);
    /// `hit_latency` the L1 hit latency.
    pub fn access_load(
        &mut self,
        byte_addr: u32,
        now: u64,
        hit_latency: u64,
        fill_complete: impl FnOnce() -> u64,
    ) -> AccessResult {
        self.accesses += 1;
        self.use_counter += 1;
        let line_addr = byte_addr / self.cfg.line_bytes;
        let (set_idx, tag) = self.set_and_tag(line_addr);
        let base = set_idx * self.assoc;
        let set = &mut self.lines[base..base + self.assoc];

        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.last_use = self.use_counter;
            if line.ready <= now {
                self.hits += 1;
                AccessResult {
                    hit: true,
                    offchip: false,
                    data_ready: now + hit_latency,
                    set: set_idx as u32,
                    evicted: false,
                }
            } else {
                // In flight: merge into the pending fill (MSHR hit).
                self.mshr_merges += 1;
                AccessResult {
                    hit: true,
                    offchip: false,
                    data_ready: line.ready + hit_latency,
                    set: set_idx as u32,
                    evicted: false,
                }
            }
        } else {
            // Miss: allocate (evicting LRU if the set is full) and issue
            // an off-chip request.
            self.offchip_requests += 1;
            let ready = fill_complete();
            let new_line = Line {
                tag,
                ready,
                last_use: self.use_counter,
                valid: true,
            };
            // Fill the first invalid way; with the set full, evict the
            // LRU (only valid ways matter: their `last_use` is always
            // above an invalid way's 0 once touched).
            let mut evicted = false;
            match set.iter_mut().find(|l| !l.valid) {
                Some(slot) => *slot = new_line,
                None => {
                    let lru = set
                        .iter_mut()
                        .min_by_key(|l| l.last_use)
                        .expect("assoc >= 1 ways per set");
                    *lru = new_line;
                    evicted = true;
                    self.evictions += 1;
                }
            }
            AccessResult {
                hit: false,
                offchip: true,
                data_ready: ready,
                set: set_idx as u32,
                evicted,
            }
        }
    }

    /// Access a *store* (write-through, no write-allocate): always an
    /// off-chip request; if the line is resident it stays resident (the
    /// written data updates it) and its LRU position refreshes. Returns
    /// the set index (heat-map coordinate).
    pub fn access_store(&mut self, byte_addr: u32) -> u32 {
        self.use_counter += 1;
        self.offchip_requests += 1;
        let line_addr = byte_addr / self.cfg.line_bytes;
        let (set_idx, tag) = self.set_and_tag(line_addr);
        let base = set_idx * self.assoc;
        if let Some(line) = self.lines[base..base + self.assoc]
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)
        {
            line.last_use = self.use_counter;
        }
        set_idx as u32
    }

    /// Load hit rate over load accesses (MSHR merges count as hits, as in
    /// hardware counters).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        (self.hits + self.mshr_merges) as f64 / self.accesses as f64
    }

    /// Number of resident (valid) lines — for invariants in tests.
    pub fn resident_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(size: u32, assoc: u32) -> L1Config {
        L1Config {
            size_bytes: size,
            line_bytes: 128,
            assoc,
        }
    }

    fn fill_at(t: u64) -> impl FnOnce() -> u64 {
        move || t
    }

    #[test]
    fn miss_then_hit() {
        let mut c = L1Cache::new(cfg(4096, 4));
        let r = c.access_load(0, 0, 28, fill_at(400));
        assert!(!r.hit);
        assert!(r.offchip);
        assert_eq!(r.data_ready, 400);
        let r = c.access_load(64, 500, 28, fill_at(900)); // same line
        assert!(r.hit);
        assert!(!r.offchip);
        assert_eq!(r.data_ready, 528);
        assert_eq!(c.accesses, 2);
        assert_eq!(c.hits, 1);
        assert_eq!(c.offchip_requests, 1);
    }

    #[test]
    fn mshr_merge_no_second_request() {
        let mut c = L1Cache::new(cfg(4096, 4));
        c.access_load(0, 0, 28, fill_at(400));
        // Second access before the fill completes: merged, waits for fill.
        let r = c.access_load(4, 100, 28, fill_at(999));
        assert!(r.hit);
        assert!(!r.offchip);
        assert_eq!(r.data_ready, 400 + 28);
        assert_eq!(c.offchip_requests, 1);
        assert_eq!(c.mshr_merges, 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        // 1 set, 2-way: 2 lines of 128B → size 256.
        let mut c = L1Cache::new(cfg(256, 2));
        assert_eq!(c.config().num_sets(), 1);
        let r = c.access_load(0, 0, 28, fill_at(1)); // line 0
        assert!(!r.evicted, "filling an invalid way is not an eviction");
        assert_eq!(r.set, 0);
        c.access_load(128, 0, 28, fill_at(1)); // line 1
        c.access_load(0, 10, 28, fill_at(1)); // touch line 0 (hit)
        let r = c.access_load(256, 20, 28, fill_at(21)); // line 2 evicts line 1 (LRU)
        assert!(r.evicted, "miss into a full set displaces the LRU way");
        let r = c.access_load(0, 30, 28, fill_at(31));
        assert!(r.hit, "line 0 must survive");
        let r = c.access_load(128, 40, 28, fill_at(41));
        assert!(!r.hit, "line 1 was evicted");
        assert_eq!(c.resident_lines(), 2);
    }

    #[test]
    fn thrashing_working_set_never_hits() {
        // Working set of 64 lines cycled through a 32-line cache: 0% hits
        // on every pass — the paper's cache-thrashing scenario.
        let mut c = L1Cache::new(cfg(32 * 128, 4));
        let mut t = 0;
        for _pass in 0..3 {
            for i in 0..64u32 {
                c.access_load(i * 128, t, 28, fill_at(t + 400));
                t += 1;
            }
        }
        assert_eq!(c.hits, 0);
        assert_eq!(c.offchip_requests, 3 * 64);
    }

    #[test]
    fn fitting_working_set_hits_after_warmup() {
        // 16 lines in a 32-line cache: second and later passes all hit.
        let mut c = L1Cache::new(cfg(32 * 128, 4));
        let mut t = 0;
        for _pass in 0..4 {
            for i in 0..16u32 {
                c.access_load(i * 128, t, 28, fill_at(t + 400));
                t += 500;
            }
        }
        assert_eq!(c.offchip_requests, 16);
        assert_eq!(c.hits, 3 * 16);
        assert!((c.hit_rate() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn stores_are_write_through_no_allocate() {
        let mut c = L1Cache::new(cfg(4096, 4));
        c.access_store(0);
        assert_eq!(c.offchip_requests, 1);
        assert_eq!(c.resident_lines(), 0);
        // A store to a resident line keeps it resident.
        c.access_load(0, 0, 28, fill_at(1));
        c.access_store(0);
        assert_eq!(c.resident_lines(), 1);
        assert_eq!(c.offchip_requests, 3);
    }

    #[test]
    fn hits_plus_misses_equals_accesses() {
        let mut c = L1Cache::new(cfg(1024, 2));
        let mut misses = 0;
        for i in 0..100u32 {
            let r = c.access_load(
                (i * 64) % 4096,
                i as u64 * 10,
                28,
                fill_at(i as u64 * 10 + 50),
            );
            if !r.hit {
                misses += 1;
            }
        }
        assert_eq!(c.hits + c.mshr_merges + misses, c.accesses);
    }
}
