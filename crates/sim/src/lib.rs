//! # catt-sim — cycle-level GPU simulator
//!
//! The paper evaluates CATT on an Nvidia Titan V. This crate is the
//! substitute substrate: a cycle-level simulator of the GPU subsystems that
//! determine cache contention — streaming multiprocessors with greedy-
//! then-oldest warp schedulers, SIMT execution with divergence masks,
//! memory-request coalescing into 128-byte lines, a set-associative L1D
//! with MSHRs, a latency/bandwidth model for L2/DRAM, shared memory with
//! `__syncthreads()` barriers, and an occupancy-limited thread-block
//! dispatcher.
//!
//! Crucially, thread-throttling *transformations are executed, not
//! modelled*: a warp-throttled kernel (paper Fig. 4) parks the inactive
//! warp groups at barriers, and a TB-throttled kernel (Fig. 5) reduces
//! resident blocks through its inflated shared-memory usage — their effect
//! on hit rates and cycles emerges from the same mechanisms as on real
//! hardware.
//!
//! ```
//! use catt_frontend::parse_kernel;
//! use catt_ir::LaunchConfig;
//! use catt_sim::{Gpu, GpuConfig, GlobalMem, Arg};
//!
//! let k = parse_kernel(
//!     "__global__ void scale(float *a, int n) {
//!          int i = blockIdx.x * blockDim.x + threadIdx.x;
//!          if (i < n) { a[i] = a[i] * 2.0f; }
//!      }",
//! ).unwrap();
//! let mut mem = GlobalMem::new();
//! let buf = mem.alloc_f32(&[1.0; 64]);
//! let mut gpu = Gpu::new(GpuConfig::small());
//! let stats = gpu
//!     .launch(&k, LaunchConfig::d1(2, 32), &[Arg::Buf(buf), Arg::I32(64)], &mut mem)
//!     .unwrap();
//! assert!(stats.cycles > 0);
//! assert_eq!(mem.read_f32(buf)[0], 2.0);
//! ```

pub mod bytecode;
pub mod cache;
pub mod config;
pub mod digest;
pub mod error;
pub mod mem;
pub mod metrics;
pub mod occupancy;
pub mod profile;
pub mod sanitize;
pub mod sm;
pub mod warp;

pub use bytecode::{lower, LowerError, Program};
pub use config::{
    add_active_engine_workers, engine_workers_guard, engine_workers_hint,
    remove_active_engine_workers, CancelToken, EngineWorkersGuard, GpuConfig, L1Config, Latencies,
    FUEL_BASE, FUEL_PER_BYTE, SMEM_CONFIGS_KB,
};
pub use digest::Fnv64;
pub use error::SimError;
pub use mem::{Arg, Buffer, DeviceMem, GlobalMem, ShadowMem, StoreLog};
pub use metrics::{LaunchStats, RequestTrace};
pub use occupancy::{max_resident_tbs, OccupancyLimits};
pub use profile::{
    LaunchProfile, MissWindow, NullSink, PhaseEvent, PhaseKind, ProfileSink, SetCounters,
    SmProfile, StallReason,
};
pub use sanitize::{SanitizerKind, SanitizerReport};

use catt_ir::{Kernel, LaunchConfig};

/// The simulated GPU. Construct once per configuration and [`Gpu::launch`]
/// kernels on it; global memory lives outside so buffers persist across
/// launches like on a real device.
pub struct Gpu {
    config: GpuConfig,
}

impl Gpu {
    /// A GPU with the given configuration.
    pub fn new(config: GpuConfig) -> Gpu {
        Gpu { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Lower and run `kernel` with the given launch configuration and
    /// arguments (one [`Arg`] per kernel parameter, in order).
    ///
    /// Thread blocks are distributed round-robin over the configured SMs;
    /// each SM runs its blocks under the occupancy limits implied by the
    /// kernel's shared-memory and register usage. Reported `cycles` is the
    /// maximum over SMs (they run independently; the shared L2/DRAM is a
    /// per-SM latency/bandwidth model, see DESIGN.md). By default the SMs
    /// are simulated on parallel worker threads with bit-identical results
    /// (`CATT_SIM_SM_PARALLEL` / [`GpuConfig::sm_parallel`] fall back to
    /// the sequential path; see DESIGN.md "Parallel SM execution").
    ///
    /// All user-reachable failures — lowering errors, bad arguments,
    /// barrier deadlocks, cycle-budget exhaustion — come back as a
    /// structured [`SimError`], never a panic (see `error` module docs).
    pub fn launch(
        &mut self,
        kernel: &Kernel,
        launch: LaunchConfig,
        args: &[Arg],
        mem: &mut GlobalMem,
    ) -> Result<LaunchStats, SimError> {
        let program = bytecode::lower(kernel)?;
        self.launch_program(&program, launch, args, mem)
    }

    /// Run an already-lowered [`Program`]. Useful when the same kernel is
    /// launched repeatedly (parameter sweeps).
    pub fn launch_program(
        &mut self,
        program: &Program,
        launch: LaunchConfig,
        args: &[Arg],
        mem: &mut GlobalMem,
    ) -> Result<LaunchStats, SimError> {
        sm::run_launch(&self.config, program, launch, args, mem)
    }
}
