//! Dynamic launch sanitizer — undefined-behaviour detection for kernels.
//!
//! The functional simulator is deliberately forgiving: out-of-bounds
//! device accesses are benign, `__syncthreads()` releases on arrival
//! counts (warps that exited count as arrived), and cross-block store
//! order is fixed by the deterministic merge. Real hardware is not
//! forgiving — the same kernels deadlock, corrupt memory, or return
//! schedule-dependent garbage. Sanitize mode
//! ([`crate::GpuConfig::sanitize`] / `CATT_SANITIZE=on`) keeps the
//! forgiving semantics but *reports* the would-be undefined behaviour as
//! a structured [`SanitizerReport`] through
//! [`SimError::Sanitizer`](crate::SimError::Sanitizer):
//!
//! * [`SanitizerKind::BarrierDivergence`] — `__syncthreads()` reached
//!   under intra-warp divergence, warps of one block parked at
//!   *different* barrier sites (pc or dynamic arrival count differ), or a
//!   warp that ran to completion without arriving at a barrier its
//!   siblings are parked at. Arrival-count release masks all three; on
//!   hardware they deadlock or desynchronize the block.
//! * [`SanitizerKind::GlobalRace`] — two different thread blocks touch
//!   the same global-memory word within one launch and at least one
//!   access is a write. Blocks have no execution-order guarantee, so the
//!   result is schedule-dependent on hardware even though the simulator's
//!   fixed merge order hides it.
//! * [`SanitizerKind::UninitializedRead`] — a global load from an address
//!   no allocation covers (alignment padding between buffers, or past the
//!   footprint). The simulator returns 0; hardware returns garbage or
//!   faults.
//! * [`SanitizerKind::SharedOutOfBounds`] — a shared-memory access past
//!   the kernel's declared `__shared__` storage. The simulator clamps
//!   (loads 0, drops stores); hardware corrupts a neighbouring block's
//!   shared data.
//!
//! Sanitized launches run on the sequential SM path so one launch-wide
//! [`SanitizerState`] observes every block's accesses; results remain
//! bit-identical to unsanitized runs (the sanitizer only observes), so
//! the knob is excluded from [`crate::GpuConfig::content_digest`].

use std::collections::HashMap;
use std::fmt;

/// The class of undefined behaviour a sanitized launch detected. See the
/// module docs for the full taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SanitizerKind {
    /// `__syncthreads()` under divergence: a partial warp mask at the
    /// barrier, mismatched barrier sites within a block, or a warp that
    /// finished without arriving.
    BarrierDivergence,
    /// Two different blocks accessed the same global word, at least one
    /// writing.
    GlobalRace,
    /// A global load from an address outside every allocation.
    UninitializedRead,
    /// A shared-memory access past the declared `__shared__` storage.
    SharedOutOfBounds,
}

impl SanitizerKind {
    /// Human-readable name of the check.
    pub fn name(&self) -> &'static str {
        match self {
            SanitizerKind::BarrierDivergence => "barrier divergence",
            SanitizerKind::GlobalRace => "global memory race",
            SanitizerKind::UninitializedRead => "uninitialized global read",
            SanitizerKind::SharedOutOfBounds => "shared memory out of bounds",
        }
    }
}

/// One detected undefined behaviour, reported through
/// [`SimError::Sanitizer`](crate::SimError::Sanitizer). The launch stops
/// at the first finding (like `compute-sanitizer --error-exitcode`), so a
/// report always describes the earliest detection point in the
/// deterministic schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SanitizerReport {
    /// Which check fired.
    pub kind: SanitizerKind,
    /// Kernel being executed.
    pub kernel: String,
    /// Program counter of the faulting instruction (the parked barrier's
    /// pc for release-time divergence findings).
    pub pc: u32,
    /// What exactly was observed (lane, address, blocks involved).
    pub detail: String,
}

impl fmt::Display for SanitizerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} in `{}` (pc {}): {}",
            self.kind.name(),
            self.kernel,
            self.pc,
            self.detail
        )
    }
}

/// Per-word access record for the launch-wide race detector.
#[derive(Clone, Copy, Default)]
struct WordAccess {
    /// Last block to write this word, if any.
    writer: Option<u32>,
    /// First block to read this word, if any.
    reader: Option<u32>,
    /// Whether blocks other than `reader` also read it.
    multi_reader: bool,
}

/// Launch-wide sanitizer state: which block last wrote / first read each
/// global word. One instance observes the whole launch (sanitized
/// launches force the sequential SM path), so races between blocks on
/// different SMs are caught. Never iterated — violations are reported at
/// detection time — so map order cannot leak into results.
#[derive(Default)]
pub struct SanitizerState {
    words: HashMap<u32, WordAccess>,
}

impl SanitizerState {
    /// Fresh state for one launch.
    pub fn new() -> SanitizerState {
        SanitizerState::default()
    }

    /// Record a global load of `byte_addr` by `block`. Returns a race
    /// description if a *different* block previously wrote the word.
    pub fn record_global_load(&mut self, byte_addr: u32, block: u32) -> Option<String> {
        let word = byte_addr / 4;
        let w = self.words.entry(word).or_default();
        if let Some(writer) = w.writer {
            if writer != block {
                return Some(format!(
                    "word at byte address {:#x} written by block {} and read by block {} \
                     with no ordering between blocks",
                    word * 4,
                    writer,
                    block
                ));
            }
        }
        match w.reader {
            None => w.reader = Some(block),
            Some(r) if r != block => w.multi_reader = true,
            Some(_) => {}
        }
        None
    }

    /// Record a global store to `byte_addr` by `block`. Returns a race
    /// description if a *different* block previously wrote or read the
    /// word.
    pub fn record_global_store(&mut self, byte_addr: u32, block: u32) -> Option<String> {
        let word = byte_addr / 4;
        let w = self.words.entry(word).or_default();
        if let Some(writer) = w.writer {
            if writer != block {
                return Some(format!(
                    "word at byte address {:#x} written by both block {} and block {} \
                     with no ordering between blocks",
                    word * 4,
                    writer,
                    block
                ));
            }
        }
        if let Some(reader) = w.reader {
            if w.multi_reader || reader != block {
                let reader = if w.multi_reader && reader == block {
                    // Some other block read it too; name that fact rather
                    // than the same-block first reader.
                    None
                } else {
                    Some(reader)
                };
                return Some(format!(
                    "word at byte address {:#x} read by {} and written by block {} \
                     with no ordering between blocks",
                    word * 4,
                    match reader {
                        Some(r) => format!("block {r}"),
                        None => "multiple blocks".to_string(),
                    },
                    block
                ));
            }
        }
        w.writer = Some(block);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_block_accesses_are_clean() {
        let mut s = SanitizerState::new();
        assert!(s.record_global_store(0x100, 3).is_none());
        assert!(s.record_global_load(0x100, 3).is_none());
        assert!(s.record_global_store(0x100, 3).is_none());
    }

    #[test]
    fn write_write_race_between_blocks() {
        let mut s = SanitizerState::new();
        assert!(s.record_global_store(0x40, 0).is_none());
        let d = s.record_global_store(0x40, 1).unwrap();
        assert!(d.contains("block 0") && d.contains("block 1"), "{d}");
    }

    #[test]
    fn read_write_race_between_blocks() {
        let mut s = SanitizerState::new();
        assert!(s.record_global_load(0x40, 0).is_none());
        let d = s.record_global_store(0x40, 1).unwrap();
        assert!(d.contains("read by block 0"), "{d}");
    }

    #[test]
    fn write_read_race_between_blocks() {
        let mut s = SanitizerState::new();
        assert!(s.record_global_store(0x40, 2).is_none());
        let d = s.record_global_load(0x40, 5).unwrap();
        assert!(d.contains("written by block 2"), "{d}");
    }

    #[test]
    fn disjoint_words_do_not_race() {
        let mut s = SanitizerState::new();
        assert!(s.record_global_store(0x0, 0).is_none());
        assert!(s.record_global_store(0x4, 1).is_none());
        assert!(s.record_global_load(0x8, 2).is_none());
    }

    #[test]
    fn shared_read_then_own_write_races_via_multi_reader() {
        let mut s = SanitizerState::new();
        assert!(s.record_global_load(0x40, 0).is_none());
        assert!(s.record_global_load(0x40, 1).is_none());
        // Block 0 read first, but block 1 also read: block 0's write races
        // with block 1's read.
        let d = s.record_global_store(0x40, 0).unwrap();
        assert!(d.contains("multiple blocks"), "{d}");
    }

    #[test]
    fn report_display_names_kind_kernel_and_pc() {
        let r = SanitizerReport {
            kind: SanitizerKind::GlobalRace,
            kernel: "k".into(),
            pc: 7,
            detail: "words collide".into(),
        };
        let msg = r.to_string();
        assert!(
            msg.contains("global memory race") && msg.contains("`k`") && msg.contains("pc 7"),
            "{msg}"
        );
    }
}
