//! Affine index-form extraction (paper §4.2, Eq. 5).
//!
//! CATT models every array index expression inside a loop as
//!
//! ```text
//! C_tid * tid + C_i * i + c
//! ```
//!
//! where `tid` is the linearized thread id and `i` the loop iterator.
//! `C_i` (the *intra-thread distance*) decides whether a fetched line is
//! reused by the next iteration (Eq. 6); `C_tid` (the *inter-thread
//! distance*) decides how many cache lines one warp's coalesced accesses
//! span (Eq. 7).
//!
//! The extraction evaluates the expression symbolically as a linear
//! polynomial over a small set of symbols (`threadIdx.x/y`, `blockIdx.x/y`,
//! the loop iterator, and any other scalar variables). Multiplication is
//! only linear when one side is a constant; anything else — including
//! indirect indexing through another array load — makes the form
//! *non-affine*, which CATT treats conservatively (`C_tid := 1`, §4.2).

use crate::expr::{BinOp, Builtin, Expr, UnOp};
use std::collections::BTreeMap;
use std::collections::HashMap;

/// Symbols a linear polynomial can range over.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sym {
    /// `threadIdx.{x,y,z}` (0 = x, 1 = y, 2 = z).
    ThreadIdx(u8),
    /// `blockIdx.{x,y,z}`.
    BlockIdx(u8),
    /// A named scalar variable (loop iterator or other local/parameter).
    Var(String),
}

/// A linear polynomial `Σ cᵢ·symᵢ + c0` with i64 coefficients.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Poly {
    /// Coefficients per symbol; zero coefficients are never stored.
    pub terms: BTreeMap<Sym, i64>,
    /// Constant term.
    pub c0: i64,
}

impl Poly {
    /// The constant polynomial `v`.
    pub fn constant(v: i64) -> Poly {
        Poly {
            terms: BTreeMap::new(),
            c0: v,
        }
    }

    /// The polynomial `1 * sym`.
    pub fn sym(sym: Sym) -> Poly {
        let mut terms = BTreeMap::new();
        terms.insert(sym, 1);
        Poly { terms, c0: 0 }
    }

    /// Whether the polynomial is a constant.
    pub fn is_const(&self) -> bool {
        self.terms.is_empty()
    }

    /// Coefficient of a symbol (0 if absent).
    pub fn coeff(&self, sym: &Sym) -> i64 {
        self.terms.get(sym).copied().unwrap_or(0)
    }

    fn add(mut self, rhs: &Poly) -> Poly {
        for (s, c) in &rhs.terms {
            let e = self.terms.entry(s.clone()).or_insert(0);
            *e += c;
            if *e == 0 {
                self.terms.remove(s);
            }
        }
        self.c0 += rhs.c0;
        self
    }

    fn neg(mut self) -> Poly {
        for c in self.terms.values_mut() {
            *c = -*c;
        }
        self.c0 = -self.c0;
        self
    }

    fn scale(mut self, k: i64) -> Poly {
        if k == 0 {
            return Poly::constant(0);
        }
        for c in self.terms.values_mut() {
            *c *= k;
        }
        self.c0 *= k;
        self
    }
}

/// Environment used during extraction: maps local scalar variables to the
/// polynomials they were assigned (forward substitution), so that
/// `int i = blockIdx.x * blockDim.x + threadIdx.x;` makes `i` a
/// tid-dependent symbol later on.
#[derive(Debug, Clone, Default)]
pub struct AffineEnv {
    /// Known linear bindings of scalar variables.
    bindings: HashMap<String, Poly>,
    /// Variables assigned something non-affine (or reassigned in loops):
    /// referencing them poisons the form.
    opaque: std::collections::HashSet<String>,
    /// `blockDim.x` value if the launch configuration is known; without it
    /// `blockIdx.x * blockDim.x` cannot be linearized.
    pub block_dim: Option<(u32, u32, u32)>,
    /// `gridDim` value if known.
    pub grid_dim: Option<(u32, u32, u32)>,
}

impl AffineEnv {
    /// Environment with a known launch configuration.
    pub fn with_launch(block: (u32, u32, u32), grid: (u32, u32, u32)) -> AffineEnv {
        AffineEnv {
            block_dim: Some(block),
            grid_dim: Some(grid),
            ..AffineEnv::default()
        }
    }

    /// Record `name := poly`.
    pub fn bind(&mut self, name: &str, poly: Poly) {
        self.opaque.remove(name);
        self.bindings.insert(name.to_string(), poly);
    }

    /// Record that `name` has an unanalyzable value.
    pub fn poison(&mut self, name: &str) {
        self.bindings.remove(name);
        self.opaque.insert(name.to_string());
    }

    /// Look up a binding.
    pub fn lookup(&self, name: &str) -> Option<&Poly> {
        self.bindings.get(name)
    }

    /// Whether the variable has been poisoned.
    pub fn is_opaque(&self, name: &str) -> bool {
        self.opaque.contains(name)
    }
}

/// Try to evaluate `e` as a linear polynomial under `env`.
///
/// Returns `None` when the expression is non-affine: non-linear
/// multiplication, division/modulo by non-constants with symbolic
/// numerators, indirect array loads, intrinsic calls, selects, or
/// references to poisoned variables.
pub fn eval_poly(e: &Expr, env: &AffineEnv) -> Option<Poly> {
    match e {
        Expr::Int(v) => Some(Poly::constant(*v)),
        Expr::Float(_) => None,
        Expr::Var(name) => {
            if env.is_opaque(name) {
                return None;
            }
            if let Some(p) = env.lookup(name) {
                Some(p.clone())
            } else {
                // Unbound scalar (e.g. a scalar kernel parameter): treat as
                // an opaque but *loop-invariant, thread-invariant* symbol.
                Some(Poly::sym(Sym::Var(name.clone())))
            }
        }
        Expr::Builtin(b) => match b {
            Builtin::ThreadIdxX => Some(Poly::sym(Sym::ThreadIdx(0))),
            Builtin::ThreadIdxY => Some(Poly::sym(Sym::ThreadIdx(1))),
            Builtin::ThreadIdxZ => Some(Poly::sym(Sym::ThreadIdx(2))),
            Builtin::BlockIdxX => Some(Poly::sym(Sym::BlockIdx(0))),
            Builtin::BlockIdxY => Some(Poly::sym(Sym::BlockIdx(1))),
            Builtin::BlockIdxZ => Some(Poly::sym(Sym::BlockIdx(2))),
            Builtin::BlockDimX => env.block_dim.map(|d| Poly::constant(d.0 as i64)),
            Builtin::BlockDimY => env.block_dim.map(|d| Poly::constant(d.1 as i64)),
            Builtin::BlockDimZ => env.block_dim.map(|d| Poly::constant(d.2 as i64)),
            Builtin::GridDimX => env.grid_dim.map(|d| Poly::constant(d.0 as i64)),
            Builtin::GridDimY => env.grid_dim.map(|d| Poly::constant(d.1 as i64)),
            Builtin::GridDimZ => env.grid_dim.map(|d| Poly::constant(d.2 as i64)),
        },
        Expr::Unary(UnOp::Neg, a) => Some(eval_poly(a, env)?.neg()),
        Expr::Unary(UnOp::Not, _) => None,
        Expr::Binary(op, a, b) => {
            let pa = eval_poly(a, env)?;
            let pb = eval_poly(b, env)?;
            match op {
                BinOp::Add => Some(pa.add(&pb)),
                BinOp::Sub => Some(pa.add(&pb.neg())),
                BinOp::Mul => {
                    if pa.is_const() {
                        Some(pb.scale(pa.c0))
                    } else if pb.is_const() {
                        Some(pa.scale(pb.c0))
                    } else {
                        None // non-linear
                    }
                }
                BinOp::Div => {
                    // Only constant / constant stays linear in general.
                    if pa.is_const() && pb.is_const() && pb.c0 != 0 {
                        Some(Poly::constant(pa.c0 / pb.c0))
                    } else {
                        None
                    }
                }
                BinOp::Shl => {
                    if pb.is_const() && (0..63).contains(&pb.c0) {
                        Some(pa.scale(1i64 << pb.c0))
                    } else {
                        None
                    }
                }
                _ => {
                    if pa.is_const() && pb.is_const() {
                        // Fold remaining integer ops on constants.
                        let (l, r) = (pa.c0, pb.c0);
                        let v = match op {
                            BinOp::Rem if r != 0 => l % r,
                            BinOp::Shr => l >> (r & 63),
                            BinOp::BitAnd => l & r,
                            BinOp::BitOr => l | r,
                            BinOp::BitXor => l ^ r,
                            _ => return None,
                        };
                        Some(Poly::constant(v))
                    } else {
                        None
                    }
                }
            }
        }
        Expr::Cast(dt, a) if dt.is_integral() => eval_poly(a, env),
        Expr::Cast(_, _) => None,
        // Indirect load, intrinsic call, select: non-affine.
        Expr::Index(_, _) | Expr::Call(_, _) | Expr::Select(_, _, _) => None,
    }
}

/// The affine index form of one array access with respect to one loop
/// (paper Eq. 5), in units of *array elements*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexForm {
    /// `C_tid` — coefficient of `threadIdx.x`. `None` when the index is
    /// non-affine/irregular (paper: treat conservatively).
    pub c_tid: Option<i64>,
    /// Coefficient of `threadIdx.y` — needed to enumerate the addresses of
    /// a warp's lanes for multidimensional thread blocks (paper §4.2:
    /// "we examine every address accessed by each thread in a warp").
    pub c_tid_y: Option<i64>,
    /// `C_i` — coefficient of the loop iterator. `None` when non-affine.
    pub c_iter: Option<i64>,
}

impl IndexForm {
    /// The fully irregular form.
    pub const IRREGULAR: IndexForm = IndexForm {
        c_tid: None,
        c_tid_y: None,
        c_iter: None,
    };
}

/// Extract `(C_tid, C_i)` for index expression `idx` inside a loop whose
/// iterator is `iter_var`, under `env` (which must contain the linear
/// bindings of preceding scalar declarations such as
/// `int i = blockIdx.x * blockDim.x + threadIdx.x`).
///
/// The linearized thread id is `blockIdx.x * blockDim.x + threadIdx.x`, so
/// with a known `blockDim.x = B` the polynomial coefficient of `tid` is the
/// coefficient of `threadIdx.x` — provided it is consistent with the
/// coefficient of `blockIdx.x` (which must equal `C_tid * B`). Within an
/// SM only `threadIdx` varies across concurrently resident threads of a
/// block, and across blocks `blockIdx` shifts the base; for footprint
/// purposes (lines touched per warp) the `threadIdx.x` coefficient is the
/// inter-thread distance — exactly the quantity Eq. 7 needs. 2-D blocks
/// fold `threadIdx.y` in via `C_tid_y * blockDim.x`-style terms; we take
/// the x coefficient since warps are formed along x first.
pub fn index_form(idx: &Expr, iter_var: Option<&str>, env: &AffineEnv) -> IndexForm {
    let Some(p) = eval_poly(idx, env) else {
        return IndexForm::IRREGULAR;
    };
    let c_tid = p.coeff(&Sym::ThreadIdx(0));
    let c_tid_y = p.coeff(&Sym::ThreadIdx(1));
    let c_iter = match iter_var {
        Some(v) => p.coeff(&Sym::Var(v.to_string())),
        None => 0,
    };
    IndexForm {
        c_tid: Some(c_tid),
        c_tid_y: Some(c_tid_y),
        c_iter: Some(c_iter),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn env_256() -> AffineEnv {
        let mut env = AffineEnv::with_launch((256, 1, 1), (320, 1, 1));
        // int i = blockIdx.x * blockDim.x + threadIdx.x;
        let p = eval_poly(&Expr::linear_tid(), &env).unwrap();
        env.bind("i", p);
        env
    }

    #[test]
    fn linear_tid_poly() {
        let env = env_256();
        let p = env.lookup("i").unwrap();
        assert_eq!(p.coeff(&Sym::ThreadIdx(0)), 1);
        assert_eq!(p.coeff(&Sym::BlockIdx(0)), 256);
        assert_eq!(p.c0, 0);
    }

    /// The paper's running example (Fig. 1): `tmp[i]`, `A[i*NX+j]`, `B[j]`.
    #[test]
    fn atax_example_forms() {
        let env = env_256();
        let nx = 40960;

        // tmp[i]: C_tid = 1, C_i = 0  (inter-thread locality, intra dist 0)
        let f = index_form(&Expr::var("i"), Some("j"), &env);
        assert_eq!(
            f,
            IndexForm {
                c_tid: Some(1),
                c_tid_y: Some(0),
                c_iter: Some(0)
            }
        );

        // A[i * NX + j]: C_tid = NX, C_i = 1
        let idx = Expr::var("i").mul(Expr::int(nx)).add(Expr::var("j"));
        let f = index_form(&idx, Some("j"), &env);
        assert_eq!(
            f,
            IndexForm {
                c_tid: Some(nx),
                c_tid_y: Some(0),
                c_iter: Some(1)
            }
        );

        // B[j]: C_tid = 0, C_i = 1
        let f = index_form(&Expr::var("j"), Some("j"), &env);
        assert_eq!(
            f,
            IndexForm {
                c_tid: Some(0),
                c_tid_y: Some(0),
                c_iter: Some(1)
            }
        );
    }

    #[test]
    fn transposed_access_form() {
        // A[j * N + i] (column-major walk): C_tid = 1, C_i = N.
        let env = env_256();
        let idx = Expr::var("j").mul(Expr::int(1024)).add(Expr::var("i"));
        let f = index_form(&idx, Some("j"), &env);
        assert_eq!(
            f,
            IndexForm {
                c_tid: Some(1),
                c_tid_y: Some(0),
                c_iter: Some(1024)
            }
        );
    }

    #[test]
    fn indirect_access_is_irregular() {
        // x[cols[j]]
        let env = env_256();
        let idx = Expr::Index("cols".into(), Box::new(Expr::var("j")));
        assert_eq!(index_form(&idx, Some("j"), &env), IndexForm::IRREGULAR);
    }

    #[test]
    fn nonlinear_mul_is_irregular() {
        let env = env_256();
        let idx = Expr::var("i").mul(Expr::var("j"));
        assert_eq!(index_form(&idx, Some("j"), &env), IndexForm::IRREGULAR);
    }

    #[test]
    fn poisoned_var_is_irregular() {
        let mut env = env_256();
        env.poison("k");
        assert_eq!(
            index_form(&Expr::var("k"), Some("j"), &env),
            IndexForm::IRREGULAR
        );
    }

    #[test]
    fn shift_scales_coefficient() {
        let env = env_256();
        // i << 3 has C_tid = 8.
        let idx = Expr::Binary(BinOp::Shl, Box::new(Expr::var("i")), Box::new(Expr::int(3)));
        let f = index_form(&idx, Some("j"), &env);
        assert_eq!(f.c_tid, Some(8));
    }

    #[test]
    fn unknown_scalar_param_is_loop_invariant_symbol() {
        // A[base + j] where `base` is a scalar parameter: C_tid = 0, C_i = 1.
        let env = env_256();
        let idx = Expr::var("base").add(Expr::var("j"));
        let f = index_form(&idx, Some("j"), &env);
        assert_eq!(
            f,
            IndexForm {
                c_tid: Some(0),
                c_tid_y: Some(0),
                c_iter: Some(1)
            }
        );
    }

    #[test]
    fn subtraction_cancels_terms() {
        let env = env_256();
        // (i + j) - i  ==> C_tid = 0, C_i = 1
        let idx = Expr::var("i").add(Expr::var("j")).sub(Expr::var("i"));
        let f = index_form(&idx, Some("j"), &env);
        assert_eq!(
            f,
            IndexForm {
                c_tid: Some(0),
                c_tid_y: Some(0),
                c_iter: Some(1)
            }
        );
        // And the zero-coefficient entry is dropped from the map.
        let p = eval_poly(&Expr::var("i").sub(Expr::var("i")), &env).unwrap();
        assert!(p.terms.is_empty());
    }

    #[test]
    fn blockdim_requires_launch_info() {
        let env = AffineEnv::default();
        assert!(eval_poly(&Expr::linear_tid(), &env).is_none());
    }

    #[test]
    fn no_loop_iterator_means_zero_c_iter() {
        let env = env_256();
        let f = index_form(&Expr::var("i"), None, &env);
        assert_eq!(
            f,
            IndexForm {
                c_tid: Some(1),
                c_tid_y: Some(0),
                c_iter: Some(0)
            }
        );
    }
}
