//! Expressions of the CUDA-C subset.

use crate::types::DType;
use std::fmt;

/// GPU builtin variables (`threadIdx.x`, `blockDim.y`, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    ThreadIdxX,
    ThreadIdxY,
    ThreadIdxZ,
    BlockIdxX,
    BlockIdxY,
    BlockIdxZ,
    BlockDimX,
    BlockDimY,
    BlockDimZ,
    GridDimX,
    GridDimY,
    GridDimZ,
}

impl Builtin {
    /// CUDA spelling of the builtin.
    pub const fn c_name(self) -> &'static str {
        match self {
            Builtin::ThreadIdxX => "threadIdx.x",
            Builtin::ThreadIdxY => "threadIdx.y",
            Builtin::ThreadIdxZ => "threadIdx.z",
            Builtin::BlockIdxX => "blockIdx.x",
            Builtin::BlockIdxY => "blockIdx.y",
            Builtin::BlockIdxZ => "blockIdx.z",
            Builtin::BlockDimX => "blockDim.x",
            Builtin::BlockDimY => "blockDim.y",
            Builtin::BlockDimZ => "blockDim.z",
            Builtin::GridDimX => "gridDim.x",
            Builtin::GridDimY => "gridDim.y",
            Builtin::GridDimZ => "gridDim.z",
        }
    }

    /// All builtins, for iteration in tests.
    pub const ALL: [Builtin; 12] = [
        Builtin::ThreadIdxX,
        Builtin::ThreadIdxY,
        Builtin::ThreadIdxZ,
        Builtin::BlockIdxX,
        Builtin::BlockIdxY,
        Builtin::BlockIdxZ,
        Builtin::BlockDimX,
        Builtin::BlockDimY,
        Builtin::BlockDimZ,
        Builtin::GridDimX,
        Builtin::GridDimY,
        Builtin::GridDimZ,
    ];
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
    Shl,
    Shr,
    BitAnd,
    BitOr,
    BitXor,
}

impl BinOp {
    /// The C spelling of the operator.
    pub const fn c_name(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
        }
    }

    /// True for comparison / logical operators, whose result is `Bool`.
    pub const fn is_predicate(self) -> bool {
        matches!(
            self,
            BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::Eq
                | BinOp::Ne
                | BinOp::And
                | BinOp::Or
        )
    }

    /// C-style precedence level (higher binds tighter), used by the
    /// pretty-printer to decide where parentheses are required.
    pub const fn precedence(self) -> u8 {
        match self {
            BinOp::Mul | BinOp::Div | BinOp::Rem => 10,
            BinOp::Add | BinOp::Sub => 9,
            BinOp::Shl | BinOp::Shr => 8,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 7,
            BinOp::Eq | BinOp::Ne => 6,
            BinOp::BitAnd => 5,
            BinOp::BitXor => 4,
            BinOp::BitOr => 3,
            BinOp::And => 2,
            BinOp::Or => 1,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation (`-x`).
    Neg,
    /// Logical not (`!x`).
    Not,
}

/// Math intrinsics callable from kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    Sqrtf,
    Expf,
    Logf,
    Fabsf,
    Fminf,
    Fmaxf,
    Powf,
    Sinf,
    Cosf,
    Min,
    Max,
    Abs,
}

impl Intrinsic {
    /// CUDA spelling.
    pub const fn c_name(self) -> &'static str {
        match self {
            Intrinsic::Sqrtf => "sqrtf",
            Intrinsic::Expf => "expf",
            Intrinsic::Logf => "logf",
            Intrinsic::Fabsf => "fabsf",
            Intrinsic::Fminf => "fminf",
            Intrinsic::Fmaxf => "fmaxf",
            Intrinsic::Powf => "powf",
            Intrinsic::Sinf => "sinf",
            Intrinsic::Cosf => "cosf",
            Intrinsic::Min => "min",
            Intrinsic::Max => "max",
            Intrinsic::Abs => "abs",
        }
    }

    /// Parse a CUDA intrinsic name.
    pub fn from_name(name: &str) -> Option<Intrinsic> {
        Some(match name {
            "sqrtf" | "sqrt" => Intrinsic::Sqrtf,
            "expf" | "exp" => Intrinsic::Expf,
            "logf" | "log" => Intrinsic::Logf,
            "fabsf" | "fabs" => Intrinsic::Fabsf,
            "fminf" => Intrinsic::Fminf,
            "fmaxf" => Intrinsic::Fmaxf,
            "powf" | "pow" => Intrinsic::Powf,
            "sinf" | "sin" => Intrinsic::Sinf,
            "cosf" | "cos" => Intrinsic::Cosf,
            "min" => Intrinsic::Min,
            "max" => Intrinsic::Max,
            "abs" => Intrinsic::Abs,
            _ => return None,
        })
    }

    /// Number of arguments the intrinsic takes.
    pub const fn arity(self) -> usize {
        match self {
            Intrinsic::Sqrtf
            | Intrinsic::Expf
            | Intrinsic::Logf
            | Intrinsic::Fabsf
            | Intrinsic::Sinf
            | Intrinsic::Cosf
            | Intrinsic::Abs => 1,
            Intrinsic::Fminf
            | Intrinsic::Fmaxf
            | Intrinsic::Powf
            | Intrinsic::Min
            | Intrinsic::Max => 2,
        }
    }
}

/// The address space an array (pointer) lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Off-chip global memory, cached in the L1D — the memory whose
    /// footprint CATT analyzes.
    Global,
    /// On-chip shared memory (`__shared__`), explicitly managed, not part
    /// of the L1D footprint.
    Shared,
}

/// Expressions. All expressions are side-effect free; array reads are
/// expressions (`Index`) while array writes only appear in
/// [`crate::stmt::LValue`].
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal (stored as `f64`; evaluated in `f32`).
    Float(f64),
    /// Reference to a scalar local variable or scalar kernel parameter.
    Var(String),
    /// GPU builtin variable.
    Builtin(Builtin),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Array element read: `array[index]`. `array` is a pointer kernel
    /// parameter (global memory) or a `__shared__` array.
    Index(String, Box<Expr>),
    /// Intrinsic call.
    Call(Intrinsic, Vec<Expr>),
    /// Cast `(int)x` / `(float)x`.
    Cast(DType, Box<Expr>),
    /// Ternary conditional `c ? a : b`.
    Select(Box<Expr>, Box<Expr>, Box<Expr>),
}

#[allow(clippy::should_implement_trait)] // builder methods, not operator impls
impl Expr {
    /// Shorthand integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Int(v)
    }

    /// Shorthand variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// `self + rhs`
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Add, Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Sub, Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Mul, Box::new(self), Box::new(rhs))
    }

    /// `self / rhs`
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Div, Box::new(self), Box::new(rhs))
    }

    /// `self % rhs`
    pub fn rem(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Rem, Box::new(self), Box::new(rhs))
    }

    /// `self < rhs`
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Lt, Box::new(self), Box::new(rhs))
    }

    /// `self <= rhs`
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Le, Box::new(self), Box::new(rhs))
    }

    /// `self >= rhs`
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Ge, Box::new(self), Box::new(rhs))
    }

    /// `self > rhs`
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Gt, Box::new(self), Box::new(rhs))
    }

    /// `self == rhs`
    pub fn eq_(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Eq, Box::new(self), Box::new(rhs))
    }

    /// `self != rhs`
    pub fn ne_(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Ne, Box::new(self), Box::new(rhs))
    }

    /// `self && rhs`
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::And, Box::new(self), Box::new(rhs))
    }

    /// `array[self]` read with this expression as the index.
    pub fn index_into(self, array: impl Into<String>) -> Expr {
        Expr::Index(array.into(), Box::new(self))
    }

    /// The canonical linearized thread id
    /// `blockIdx.x * blockDim.x + threadIdx.x`.
    pub fn linear_tid() -> Expr {
        Expr::Builtin(Builtin::BlockIdxX)
            .mul(Expr::Builtin(Builtin::BlockDimX))
            .add(Expr::Builtin(Builtin::ThreadIdxX))
    }

    /// If the expression is a compile-time integer constant, return it.
    /// Performs constant folding over arithmetic on literals.
    pub fn const_int(&self) -> Option<i64> {
        match self {
            Expr::Int(v) => Some(*v),
            Expr::Unary(UnOp::Neg, e) => e.const_int().and_then(i64::checked_neg),
            Expr::Binary(op, l, r) => {
                let (l, r) = (l.const_int()?, r.const_int()?);
                // Checked arithmetic throughout: fuzzed `#define` folding
                // can reach any operand values, and an overflow here must
                // be "not a constant", not a debug-mode panic.
                Some(match op {
                    BinOp::Add => l.checked_add(r)?,
                    BinOp::Sub => l.checked_sub(r)?,
                    BinOp::Mul => l.checked_mul(r)?,
                    BinOp::Div => l.checked_div(r)?,
                    BinOp::Rem => l.checked_rem(r)?,
                    BinOp::Shl => l << (r & 63),
                    BinOp::Shr => l >> (r & 63),
                    BinOp::BitAnd => l & r,
                    BinOp::BitOr => l | r,
                    BinOp::BitXor => l ^ r,
                    _ => return None,
                })
            }
            Expr::Cast(dt, e) if dt.is_integral() => e.const_int(),
            _ => None,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::printer::expr_to_string(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_fold_arithmetic() {
        let e = Expr::int(40).mul(Expr::int(1024)).add(Expr::int(576));
        assert_eq!(e.const_int(), Some(40 * 1024 + 576));
    }

    #[test]
    fn const_fold_div_by_zero_is_none() {
        assert_eq!(Expr::int(1).div(Expr::int(0)).const_int(), None);
        assert_eq!(Expr::int(1).rem(Expr::int(0)).const_int(), None);
    }

    #[test]
    fn vars_are_not_const() {
        assert_eq!(Expr::var("i").add(Expr::int(1)).const_int(), None);
        assert_eq!(Expr::Builtin(Builtin::ThreadIdxX).const_int(), None);
    }

    #[test]
    fn negation_folds() {
        let e = Expr::Unary(UnOp::Neg, Box::new(Expr::int(7)));
        assert_eq!(e.const_int(), Some(-7));
    }

    #[test]
    fn intrinsic_roundtrip() {
        for i in [Intrinsic::Sqrtf, Intrinsic::Min, Intrinsic::Fmaxf] {
            assert_eq!(Intrinsic::from_name(i.c_name()), Some(i));
        }
        assert_eq!(Intrinsic::from_name("notafunc"), None);
    }

    #[test]
    fn precedence_ordering() {
        assert!(BinOp::Mul.precedence() > BinOp::Add.precedence());
        assert!(BinOp::Add.precedence() > BinOp::Lt.precedence());
        assert!(BinOp::Lt.precedence() > BinOp::And.precedence());
        assert!(BinOp::And.precedence() > BinOp::Or.precedence());
    }

    #[test]
    fn predicate_classification() {
        assert!(BinOp::Lt.is_predicate());
        assert!(BinOp::And.is_predicate());
        assert!(!BinOp::Add.is_predicate());
        assert!(!BinOp::Shl.is_predicate());
    }
}
