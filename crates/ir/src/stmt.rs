//! Statements of the CUDA-C subset.

use crate::expr::{BinOp, Expr};
use crate::types::DType;

/// An assignable location.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A scalar local variable.
    Var(String),
    /// An array element, `array[index]`.
    Elem(String, Expr),
}

impl LValue {
    /// The variable or array name being written.
    pub fn name(&self) -> &str {
        match self {
            LValue::Var(n) => n,
            LValue::Elem(n, _) => n,
        }
    }
}

/// Statements. Control flow is structured: there is no `goto`, and
/// `break`/`continue` bind to the innermost loop.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local scalar declaration: `int i = ...;` / `float acc;`
    DeclScalar {
        name: String,
        ty: DType,
        init: Option<Expr>,
    },
    /// Shared-memory array declaration: `__shared__ float buf[256];`
    ///
    /// `len` must be a compile-time constant: shared-memory usage must be
    /// statically known both for occupancy computation (paper Eq. 1) and
    /// for the TB-level throttling transform (paper Fig. 5).
    DeclShared { name: String, elem: DType, len: u32 },
    /// Assignment `lhs op= rhs` (`op == None` for plain `=`).
    Assign {
        lhs: LValue,
        op: Option<BinOp>,
        rhs: Expr,
    },
    /// `if (cond) { then } else { els }`
    If {
        cond: Expr,
        then: Vec<Stmt>,
        els: Vec<Stmt>,
    },
    /// Canonical counted loop:
    /// `for (var = init; var < bound (or <=,>,>=,!=); var += step) body`.
    ///
    /// Keeping loops canonical is what lets the affine analysis identify
    /// the iterator variable and its stride directly; the parser rejects
    /// non-canonical `for` headers.
    For {
        var: String,
        /// Whether the header declares the variable (`for (int j = ...`).
        decl: bool,
        init: Expr,
        /// Comparison op of the guard, one of `<, <=, >, >=, !=`.
        cond_op: BinOp,
        bound: Expr,
        /// Signed stride added each iteration (`j += step`).
        step: Expr,
        body: Vec<Stmt>,
    },
    /// `while (cond) body` — used by irregular workloads (e.g. BFS) whose
    /// trip count is data-dependent.
    While { cond: Expr, body: Vec<Stmt> },
    /// `__syncthreads();` — thread-block barrier.
    SyncThreads,
    /// `break;`
    Break,
    /// `return;` (kernels return `void`).
    Return,
    /// Evaluate an expression for its side-free value and discard it
    /// (kept for parser completeness; lowering drops it).
    ExprStmt(Expr),
}

impl Stmt {
    /// Plain assignment to a scalar variable.
    pub fn assign(name: impl Into<String>, rhs: Expr) -> Stmt {
        Stmt::Assign {
            lhs: LValue::Var(name.into()),
            op: None,
            rhs,
        }
    }

    /// Plain store to an array element.
    pub fn store(array: impl Into<String>, index: Expr, rhs: Expr) -> Stmt {
        Stmt::Assign {
            lhs: LValue::Elem(array.into(), index),
            op: None,
            rhs,
        }
    }

    /// Compound store `array[index] += rhs`.
    pub fn store_acc(array: impl Into<String>, index: Expr, rhs: Expr) -> Stmt {
        Stmt::Assign {
            lhs: LValue::Elem(array.into(), index),
            op: Some(BinOp::Add),
            rhs,
        }
    }

    /// `int name = init;`
    pub fn decl_i32(name: impl Into<String>, init: Expr) -> Stmt {
        Stmt::DeclScalar {
            name: name.into(),
            ty: DType::I32,
            init: Some(init),
        }
    }

    /// `float name = init;`
    pub fn decl_f32(name: impl Into<String>, init: Expr) -> Stmt {
        Stmt::DeclScalar {
            name: name.into(),
            ty: DType::F32,
            init: Some(init),
        }
    }

    /// Canonical `for (int var = 0; var < bound; var++) body`.
    pub fn for_up(var: impl Into<String>, bound: Expr, body: Vec<Stmt>) -> Stmt {
        Stmt::For {
            var: var.into(),
            decl: true,
            init: Expr::int(0),
            cond_op: BinOp::Lt,
            bound,
            step: Expr::int(1),
            body,
        }
    }

    /// `if (cond) { then }` with no else branch.
    pub fn if_then(cond: Expr, then: Vec<Stmt>) -> Stmt {
        Stmt::If {
            cond,
            then,
            els: vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lvalue_name() {
        assert_eq!(LValue::Var("x".into()).name(), "x");
        assert_eq!(LValue::Elem("A".into(), Expr::int(0)).name(), "A");
    }

    #[test]
    fn for_up_shape() {
        let s = Stmt::for_up("j", Expr::int(10), vec![]);
        match s {
            Stmt::For {
                var,
                decl,
                init,
                cond_op,
                bound,
                step,
                body,
            } => {
                assert_eq!(var, "j");
                assert!(decl);
                assert_eq!(init, Expr::int(0));
                assert_eq!(cond_op, BinOp::Lt);
                assert_eq!(bound, Expr::int(10));
                assert_eq!(step, Expr::int(1));
                assert!(body.is_empty());
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn store_acc_is_compound() {
        match Stmt::store_acc("A", Expr::int(1), Expr::int(2)) {
            Stmt::Assign { op, .. } => assert_eq!(op, Some(BinOp::Add)),
            other => panic!("unexpected: {other:?}"),
        }
    }
}
