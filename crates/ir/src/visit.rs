//! Recursive walkers over statements and expressions.
//!
//! The analyses in `catt-core` and the lowering in `catt-sim` both need to
//! enumerate nested statements / expressions; these helpers centralize the
//! recursion so each client only writes the per-node logic.

use crate::expr::Expr;
use crate::stmt::{LValue, Stmt};

/// Call `f` on every statement in `stmts`, pre-order, recursing into
/// `if`/`for`/`while` bodies.
pub fn walk_stmts<F: FnMut(&Stmt)>(stmts: &[Stmt], f: &mut F) {
    for s in stmts {
        f(s);
        match s {
            Stmt::If { then, els, .. } => {
                walk_stmts(then, f);
                walk_stmts(els, f);
            }
            Stmt::For { body, .. } | Stmt::While { body, .. } => walk_stmts(body, f),
            _ => {}
        }
    }
}

/// Mutable pre-order walk over statements.
pub fn walk_stmts_mut<F: FnMut(&mut Stmt)>(stmts: &mut [Stmt], f: &mut F) {
    for s in stmts {
        f(s);
        match s {
            Stmt::If { then, els, .. } => {
                walk_stmts_mut(then, f);
                walk_stmts_mut(els, f);
            }
            Stmt::For { body, .. } | Stmt::While { body, .. } => walk_stmts_mut(body, f),
            _ => {}
        }
    }
}

/// Call `f` on every expression appearing in a statement (conditions,
/// bounds, initializers, assignment sources, and index expressions of
/// lvalues), recursing into sub-statements and sub-expressions.
pub fn walk_exprs_in_stmts<F: FnMut(&Expr)>(stmts: &[Stmt], f: &mut F) {
    walk_stmts(stmts, &mut |s| {
        match s {
            Stmt::DeclScalar { init: Some(e), .. } => walk_expr(e, f),
            Stmt::Assign { lhs, rhs, .. } => {
                if let LValue::Elem(_, idx) = lhs {
                    walk_expr(idx, f);
                }
                walk_expr(rhs, f);
            }
            Stmt::If { cond, .. } => walk_expr(cond, f),
            Stmt::For {
                init, bound, step, ..
            } => {
                walk_expr(init, f);
                walk_expr(bound, f);
                walk_expr(step, f);
            }
            Stmt::While { cond, .. } => walk_expr(cond, f),
            Stmt::ExprStmt(e) => walk_expr(e, f),
            _ => {}
        };
    });
}

/// Mutable counterpart of [`walk_exprs_in_stmts`]: call `f` on every
/// expression appearing in a statement (including lvalue indices),
/// recursing into sub-statements and sub-expressions. Pre-order, so `f`
/// sees a node before its (possibly rewritten) children.
pub fn walk_exprs_in_stmts_mut<F: FnMut(&mut Expr)>(stmts: &mut [Stmt], f: &mut F) {
    walk_stmts_mut(stmts, &mut |s| {
        match s {
            Stmt::DeclScalar { init: Some(e), .. } => walk_expr_mut(e, f),
            Stmt::Assign { lhs, rhs, .. } => {
                if let LValue::Elem(_, idx) = lhs {
                    walk_expr_mut(idx, f);
                }
                walk_expr_mut(rhs, f);
            }
            Stmt::If { cond, .. } => walk_expr_mut(cond, f),
            Stmt::For {
                init, bound, step, ..
            } => {
                walk_expr_mut(init, f);
                walk_expr_mut(bound, f);
                walk_expr_mut(step, f);
            }
            Stmt::While { cond, .. } => walk_expr_mut(cond, f),
            Stmt::ExprStmt(e) => walk_expr_mut(e, f),
            _ => {}
        };
    });
}

/// Call `f` on `e` and every sub-expression, pre-order.
pub fn walk_expr<F: FnMut(&Expr)>(e: &Expr, f: &mut F) {
    f(e);
    match e {
        Expr::Unary(_, a) | Expr::Cast(_, a) | Expr::Index(_, a) => walk_expr(a, f),
        Expr::Binary(_, a, b) => {
            walk_expr(a, f);
            walk_expr(b, f);
        }
        Expr::Select(c, a, b) => {
            walk_expr(c, f);
            walk_expr(a, f);
            walk_expr(b, f);
        }
        Expr::Call(_, args) => {
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Int(_) | Expr::Float(_) | Expr::Var(_) | Expr::Builtin(_) => {}
    }
}

/// Mutable pre-order walk over `e` and every sub-expression. `f` runs on
/// a node before its children, so a rewrite that replaces a node entirely
/// (e.g. builtin → variable) is not re-entered through the old children.
pub fn walk_expr_mut<F: FnMut(&mut Expr)>(e: &mut Expr, f: &mut F) {
    f(e);
    match e {
        Expr::Unary(_, a) | Expr::Cast(_, a) | Expr::Index(_, a) => walk_expr_mut(a, f),
        Expr::Binary(_, a, b) => {
            walk_expr_mut(a, f);
            walk_expr_mut(b, f);
        }
        Expr::Select(c, a, b) => {
            walk_expr_mut(c, f);
            walk_expr_mut(a, f);
            walk_expr_mut(b, f);
        }
        Expr::Call(_, args) => {
            for a in args {
                walk_expr_mut(a, f);
            }
        }
        Expr::Int(_) | Expr::Float(_) | Expr::Var(_) | Expr::Builtin(_) => {}
    }
}

/// Collect every global-memory access (array name, index expression,
/// `is_store`) appearing in `stmts`, recursing into nested statements.
/// `is_global` filters out `__shared__` arrays.
pub fn collect_accesses<'a>(
    stmts: &'a [Stmt],
    is_global: &dyn Fn(&str) -> bool,
) -> Vec<(&'a str, &'a Expr, bool)> {
    fn loads<'a>(
        e: &'a Expr,
        is_global: &dyn Fn(&str) -> bool,
        out: &mut Vec<(&'a str, &'a Expr, bool)>,
    ) {
        if let Expr::Index(name, idx) = e {
            if is_global(name) {
                out.push((name.as_str(), idx.as_ref(), false));
            }
        }
        match e {
            Expr::Unary(_, a) | Expr::Cast(_, a) | Expr::Index(_, a) => loads(a, is_global, out),
            Expr::Binary(_, a, b) => {
                loads(a, is_global, out);
                loads(b, is_global, out);
            }
            Expr::Select(c, a, b) => {
                loads(c, is_global, out);
                loads(a, is_global, out);
                loads(b, is_global, out);
            }
            Expr::Call(_, args) => {
                for a in args {
                    loads(a, is_global, out);
                }
            }
            Expr::Int(_) | Expr::Float(_) | Expr::Var(_) | Expr::Builtin(_) => {}
        }
    }

    fn go<'a>(
        stmts: &'a [Stmt],
        is_global: &dyn Fn(&str) -> bool,
        out: &mut Vec<(&'a str, &'a Expr, bool)>,
    ) {
        for s in stmts {
            match s {
                Stmt::DeclScalar { init: Some(e), .. } => loads(e, is_global, out),
                Stmt::Assign { lhs, op, rhs } => {
                    if let LValue::Elem(name, idx) = lhs {
                        // Index sub-expressions may themselves load
                        // (indirect addressing, e.g. `x[cols[j]]`).
                        loads(idx, is_global, out);
                        if is_global(name) {
                            out.push((name.as_str(), idx, true));
                            // A compound assignment (`+=`) also reads the
                            // element before writing it back.
                            if op.is_some() {
                                out.push((name.as_str(), idx, false));
                            }
                        }
                    }
                    loads(rhs, is_global, out);
                }
                Stmt::If { cond, then, els } => {
                    loads(cond, is_global, out);
                    go(then, is_global, out);
                    go(els, is_global, out);
                }
                Stmt::For {
                    init,
                    bound,
                    step,
                    body,
                    ..
                } => {
                    loads(init, is_global, out);
                    loads(bound, is_global, out);
                    loads(step, is_global, out);
                    go(body, is_global, out);
                }
                Stmt::While { cond, body } => {
                    loads(cond, is_global, out);
                    go(body, is_global, out);
                }
                Stmt::ExprStmt(e) => loads(e, is_global, out),
                _ => {}
            }
        }
    }

    let mut out = Vec::new();
    go(stmts, is_global, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    #[test]
    fn walk_counts_nested_stmts() {
        let stmts = vec![Stmt::for_up(
            "j",
            Expr::int(4),
            vec![Stmt::if_then(Expr::int(1), vec![Stmt::SyncThreads])],
        )];
        let mut n = 0;
        walk_stmts(&stmts, &mut |_| n += 1);
        assert_eq!(n, 3); // for, if, sync
    }

    #[test]
    fn collect_finds_loads_and_stores() {
        // tmp[i] += A[i * 4 + j] * B[j];
        let i = Expr::var("i");
        let j = Expr::var("j");
        let stmts = vec![Stmt::store_acc(
            "tmp",
            i.clone(),
            Expr::Index("A".into(), Box::new(i.mul(Expr::int(4)).add(j.clone())))
                .mul(Expr::Index("B".into(), Box::new(j))),
        )];
        let acc = collect_accesses(&stmts, &|_| true);
        let names: Vec<(&str, bool)> = acc.iter().map(|(n, _, s)| (*n, *s)).collect();
        assert!(names.contains(&("tmp", true)));
        assert!(names.contains(&("tmp", false))); // compound read
        assert!(names.contains(&("A", false)));
        assert!(names.contains(&("B", false)));
        assert_eq!(acc.len(), 4);
    }

    #[test]
    fn mut_walk_rewrites_everywhere_exprs_appear() {
        use crate::expr::Builtin;
        // if (blockIdx.x < 4) { out[blockIdx.x] = blockIdx.x; }
        let bx = Expr::Builtin(Builtin::BlockIdxX);
        let mut stmts = vec![Stmt::if_then(
            bx.clone().lt(Expr::int(4)),
            vec![Stmt::store("out", bx.clone(), bx)],
        )];
        walk_exprs_in_stmts_mut(&mut stmts, &mut |e| {
            if matches!(e, Expr::Builtin(Builtin::BlockIdxX)) {
                *e = Expr::var("bx");
            }
        });
        let mut seen = 0;
        walk_exprs_in_stmts(&stmts, &mut |e| match e {
            Expr::Builtin(Builtin::BlockIdxX) => panic!("builtin survived the rewrite"),
            Expr::Var(n) if n == "bx" => seen += 1,
            _ => {}
        });
        assert_eq!(seen, 3, "condition, lvalue index, and rhs all rewritten");
    }

    #[test]
    fn collect_respects_is_global_filter() {
        let stmts = vec![Stmt::store("shmem", Expr::int(0), Expr::int(1))];
        let acc = collect_accesses(&stmts, &|n| n != "shmem");
        assert!(acc.is_empty());
    }

    #[test]
    fn collect_finds_indirect_index_loads() {
        // x[cols[j]]
        let e = Expr::Index(
            "x".into(),
            Box::new(Expr::Index("cols".into(), Box::new(Expr::var("j")))),
        );
        let stmts = vec![Stmt::assign("v", e)];
        let acc = collect_accesses(&stmts, &|_| true);
        let names: Vec<&str> = acc.iter().map(|(n, _, _)| *n).collect();
        assert!(names.contains(&"x"));
        assert!(names.contains(&"cols"));
    }
}
