//! Scalar data types of the CUDA-C subset.

use std::fmt;

/// Scalar element/value types supported by the IR.
///
/// Arrays are always flat (`float *A` indexed with a single linearized
/// index), matching the paper's analysis of "linearized arrays on a
/// linearized thread grid" (§4.2). All scalar types are 32-bit wide, which
/// is what the coalescing analysis assumes (a fully diverged warp touches
/// 32 distinct 128-byte lines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 32-bit IEEE-754 float (`float`).
    F32,
    /// 32-bit signed integer (`int`).
    I32,
    /// 32-bit unsigned integer (`unsigned int`).
    U32,
    /// Boolean (predicate); storage-wise a 32-bit 0/1 value.
    Bool,
}

impl DType {
    /// Size of a value of this type in bytes (always 4 in this subset;
    /// `Bool` is stored widened).
    pub const fn size_bytes(self) -> u32 {
        4
    }

    /// The CUDA-C spelling of the type.
    pub const fn c_name(self) -> &'static str {
        match self {
            DType::F32 => "float",
            DType::I32 => "int",
            DType::U32 => "unsigned int",
            DType::Bool => "bool",
        }
    }

    /// Whether the type is one of the integer types (including `Bool`).
    pub const fn is_integral(self) -> bool {
        matches!(self, DType::I32 | DType::U32 | DType::Bool)
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.c_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_word_sized() {
        for t in [DType::F32, DType::I32, DType::U32, DType::Bool] {
            assert_eq!(t.size_bytes(), 4);
        }
    }

    #[test]
    fn c_names() {
        assert_eq!(DType::F32.to_string(), "float");
        assert_eq!(DType::I32.to_string(), "int");
        assert_eq!(DType::U32.to_string(), "unsigned int");
    }

    #[test]
    fn integral_classification() {
        assert!(!DType::F32.is_integral());
        assert!(DType::I32.is_integral());
        assert!(DType::U32.is_integral());
        assert!(DType::Bool.is_integral());
    }
}
