//! Kernels, parameters, launch configurations, and modules.

use crate::stmt::Stmt;
use crate::types::DType;
use crate::visit;
use catt_diag::Span;

/// Source-span side table for a kernel: where in the submitted source
/// the kernel name, each loop, and each barrier sit. Filled by the
/// parser; empty (`Default`) for kernels built programmatically.
///
/// Loops are indexed by the same blind pre-order numbering over
/// `for`/`while` that `catt_core` analysis and transforms use for
/// `loop_id`, so a legality diagnostic for loop *k* can point at
/// `spans.loops[k]`.
///
/// Equality is intentionally vacuous: the round-trip check
/// `parse(print(k)) == k` and the pipeline's `original != transformed`
/// comparison must not be perturbed by where the text happened to sit.
#[derive(Debug, Clone, Default)]
pub struct KernelSpans {
    /// Span of the kernel's name token in its declaration.
    pub name: Span,
    /// One span per `for`/`while`, pre-order, from the loop keyword to
    /// the end of the loop body.
    pub loops: Vec<Span>,
    /// Span of every `__syncthreads()` call, in source order.
    pub barriers: Vec<Span>,
}

impl PartialEq for KernelSpans {
    fn eq(&self, _other: &KernelSpans) -> bool {
        true
    }
}

impl KernelSpans {
    /// Span for pre-order loop `loop_id`, if the kernel came through
    /// the parser and the id is in range.
    pub fn loop_span(&self, loop_id: usize) -> Option<Span> {
        self.loops.get(loop_id).copied()
    }
}

/// A three-component launch dimension (`dim3`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dim3 {
    pub x: u32,
    pub y: u32,
    pub z: u32,
}

impl Dim3 {
    /// 1-D dimension `(x, 1, 1)`.
    pub const fn x(x: u32) -> Dim3 {
        Dim3 { x, y: 1, z: 1 }
    }

    /// 2-D dimension `(x, y, 1)`.
    pub const fn xy(x: u32, y: u32) -> Dim3 {
        Dim3 { x, y, z: 1 }
    }

    /// Total element count `x * y * z`.
    pub const fn count(self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }
}

impl From<u32> for Dim3 {
    fn from(x: u32) -> Dim3 {
        Dim3::x(x)
    }
}

/// Kernel parameter type: either a pointer to global memory or a scalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamTy {
    /// `float *A` — flat array in off-chip global memory.
    Ptr(DType),
    /// `int n` — scalar passed by value.
    Scalar(DType),
}

/// A kernel parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    pub name: String,
    pub ty: ParamTy,
}

impl Param {
    /// Pointer parameter `elem *name`.
    pub fn ptr(name: impl Into<String>, elem: DType) -> Param {
        Param {
            name: name.into(),
            ty: ParamTy::Ptr(elem),
        }
    }

    /// Scalar parameter.
    pub fn scalar(name: impl Into<String>, ty: DType) -> Param {
        Param {
            name: name.into(),
            ty: ParamTy::Scalar(ty),
        }
    }
}

/// A `__global__` kernel function.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    pub name: String,
    pub params: Vec<Param>,
    pub body: Vec<Stmt>,
    /// Source spans (see [`KernelSpans`]); does not participate in
    /// equality. Empty for programmatically built kernels.
    pub spans: KernelSpans,
}

impl Kernel {
    /// Create an empty kernel.
    pub fn new(name: impl Into<String>, params: Vec<Param>, body: Vec<Stmt>) -> Kernel {
        Kernel {
            name: name.into(),
            params,
            body,
            spans: KernelSpans::default(),
        }
    }

    /// Total statically declared shared memory, in bytes, over every
    /// `__shared__` declaration anywhere in the kernel (paper: `USE_shm_TB`
    /// of Eq. 1). This is what the TB-level throttling transform inflates.
    pub fn shared_mem_bytes(&self) -> u32 {
        let mut total = 0u32;
        visit::walk_stmts(&self.body, &mut |s| {
            if let Stmt::DeclShared { elem, len, .. } = s {
                // Saturating: fuzzed sources can declare absurd extents,
                // and "more shared memory than any config has" is the
                // right downstream outcome, not an overflow panic.
                total = total.saturating_add(elem.size_bytes().saturating_mul(*len));
            }
        });
        total
    }

    /// Names of pointer (global-memory) parameters.
    pub fn global_arrays(&self) -> Vec<&str> {
        self.params
            .iter()
            .filter(|p| matches!(p.ty, ParamTy::Ptr(_)))
            .map(|p| p.name.as_str())
            .collect()
    }

    /// Names of `__shared__` arrays declared in the kernel.
    pub fn shared_arrays(&self) -> Vec<String> {
        let mut out = Vec::new();
        visit::walk_stmts(&self.body, &mut |s| {
            if let Stmt::DeclShared { name, .. } = s {
                out.push(name.clone());
            }
        });
        out
    }

    /// Whether `name` is a `__shared__` array (as opposed to a global
    /// pointer parameter).
    pub fn is_shared_array(&self, name: &str) -> bool {
        let mut found = false;
        visit::walk_stmts(&self.body, &mut |s| {
            if let Stmt::DeclShared { name: n, .. } = s {
                found |= n == name;
            }
        });
        found
    }
}

/// Launch configuration for one kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    pub grid: Dim3,
    pub block: Dim3,
}

impl LaunchConfig {
    /// 1-D launch `<<<grid, block>>>`.
    pub const fn d1(grid: u32, block: u32) -> LaunchConfig {
        LaunchConfig {
            grid: Dim3::x(grid),
            block: Dim3::x(block),
        }
    }

    /// Threads per block.
    pub const fn threads_per_block(&self) -> u32 {
        (self.block.count()) as u32
    }

    /// Warps per thread block, rounding partial warps up (paper
    /// `#Warps_TB`; warp size 32).
    pub const fn warps_per_block(&self) -> u32 {
        self.threads_per_block().div_ceil(32)
    }

    /// Total thread blocks in the grid.
    pub const fn num_blocks(&self) -> u32 {
        self.grid.count() as u32
    }
}

/// A translation unit: several kernels plus the `#define` constants seen
/// while parsing (retained for re-emission).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    pub defines: Vec<(String, i64)>,
    pub kernels: Vec<Kernel>,
}

impl Module {
    /// Find a kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&Kernel> {
        self.kernels.iter().find(|k| k.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    #[test]
    fn dim3_count() {
        assert_eq!(Dim3::x(320).count(), 320);
        assert_eq!(Dim3::xy(16, 16).count(), 256);
    }

    #[test]
    fn warps_per_block_rounds_up() {
        assert_eq!(LaunchConfig::d1(1, 256).warps_per_block(), 8);
        assert_eq!(LaunchConfig::d1(1, 33).warps_per_block(), 2);
        assert_eq!(LaunchConfig::d1(1, 32).warps_per_block(), 1);
        assert_eq!(LaunchConfig::d1(1, 1).warps_per_block(), 1);
    }

    #[test]
    fn shared_mem_accounting() {
        let k = Kernel::new(
            "k",
            vec![],
            vec![
                Stmt::DeclShared {
                    name: "a".into(),
                    elem: DType::F32,
                    len: 256,
                },
                Stmt::if_then(
                    Expr::int(1),
                    vec![Stmt::DeclShared {
                        name: "b".into(),
                        elem: DType::I32,
                        len: 64,
                    }],
                ),
            ],
        );
        assert_eq!(k.shared_mem_bytes(), 256 * 4 + 64 * 4);
        assert_eq!(k.shared_arrays(), vec!["a", "b"]);
        assert!(k.is_shared_array("a"));
        assert!(!k.is_shared_array("c"));
    }

    #[test]
    fn global_arrays_filters_scalars() {
        let k = Kernel::new(
            "k",
            vec![
                Param::ptr("A", DType::F32),
                Param::scalar("n", DType::I32),
                Param::ptr("B", DType::I32),
            ],
            vec![],
        );
        assert_eq!(k.global_arrays(), vec!["A", "B"]);
    }

    #[test]
    fn module_lookup() {
        let m = Module {
            defines: vec![],
            kernels: vec![
                Kernel::new("a", vec![], vec![]),
                Kernel::new("b", vec![], vec![]),
            ],
        };
        assert!(m.kernel("a").is_some());
        assert!(m.kernel("missing").is_none());
    }
}
