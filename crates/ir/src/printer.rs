//! CUDA-like pretty printer.
//!
//! CATT is a *source-to-source* transformation (paper §4): after inserting
//! throttling code the compiler re-emits CUDA C. This module renders the
//! IR back to compilable-looking CUDA source. The frontend parses the
//! printer's output back to an identical module (round-trip property,
//! tested in `catt-frontend`).

use crate::expr::{Expr, UnOp};
use crate::kernel::{Kernel, Module, Param, ParamTy};
use crate::stmt::{LValue, Stmt};
use std::fmt::Write;

/// Render an expression as C source.
pub fn expr_to_string(e: &Expr) -> String {
    let mut s = String::new();
    write_expr(&mut s, e, 0);
    s
}

fn write_expr(out: &mut String, e: &Expr, parent_prec: u8) {
    match e {
        Expr::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::Float(v) => {
            // Keep a decimal point / exponent so it re-parses as float.
            if v.fract() == 0.0 && v.abs() < 1e15 {
                let _ = write!(out, "{v:.1}f");
            } else {
                let _ = write!(out, "{v}f");
            }
        }
        Expr::Var(n) => out.push_str(n),
        Expr::Builtin(b) => out.push_str(b.c_name()),
        Expr::Unary(op, a) => {
            out.push_str(match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            });
            // `-(-1)` must not print as `--1` (which lexes as a
            // decrement); parenthesize operands that start with `-`.
            let starts_negative = matches!(
                a.as_ref(),
                Expr::Int(v) if *v < 0
            ) || matches!(a.as_ref(), Expr::Float(v) if *v < 0.0)
                || matches!(a.as_ref(), Expr::Unary(UnOp::Neg, _));
            if *op == UnOp::Neg && starts_negative {
                out.push('(');
                write_expr(out, a, 0);
                out.push(')');
            } else {
                write_expr(out, a, 11);
            }
        }
        Expr::Binary(op, a, b) => {
            let prec = op.precedence();
            let need_paren = prec < parent_prec;
            if need_paren {
                out.push('(');
            }
            write_expr(out, a, prec);
            let _ = write!(out, " {} ", op.c_name());
            // +1: left-associative, so the right child needs parens at
            // equal precedence (e.g. `a - (b - c)`).
            write_expr(out, b, prec + 1);
            if need_paren {
                out.push(')');
            }
        }
        Expr::Index(arr, idx) => {
            out.push_str(arr);
            out.push('[');
            write_expr(out, idx, 0);
            out.push(']');
        }
        Expr::Call(intr, args) => {
            out.push_str(intr.c_name());
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a, 0);
            }
            out.push(')');
        }
        Expr::Cast(ty, a) => {
            let _ = write!(out, "({})", ty.c_name());
            write_expr(out, a, 11);
        }
        Expr::Select(c, a, b) => {
            out.push('(');
            write_expr(out, c, 1);
            out.push_str(" ? ");
            write_expr(out, a, 1);
            out.push_str(" : ");
            write_expr(out, b, 1);
            out.push(')');
        }
    }
}

fn write_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn write_stmt(out: &mut String, s: &Stmt, depth: usize) {
    write_indent(out, depth);
    match s {
        Stmt::DeclScalar { name, ty, init } => {
            let _ = write!(out, "{} {}", ty.c_name(), name);
            if let Some(e) = init {
                out.push_str(" = ");
                write_expr(out, e, 0);
            }
            out.push_str(";\n");
        }
        Stmt::DeclShared { name, elem, len } => {
            let _ = writeln!(out, "__shared__ {} {}[{}];", elem.c_name(), name, len);
        }
        Stmt::Assign { lhs, op, rhs } => {
            match lhs {
                LValue::Var(n) => out.push_str(n),
                LValue::Elem(n, idx) => {
                    out.push_str(n);
                    out.push('[');
                    write_expr(out, idx, 0);
                    out.push(']');
                }
            }
            match op {
                Some(o) => {
                    let _ = write!(out, " {}= ", o.c_name());
                }
                None => out.push_str(" = "),
            }
            write_expr(out, rhs, 0);
            out.push_str(";\n");
        }
        Stmt::If { cond, then, els } => {
            out.push_str("if (");
            write_expr(out, cond, 0);
            out.push_str(") {\n");
            for st in then {
                write_stmt(out, st, depth + 1);
            }
            write_indent(out, depth);
            if els.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                for st in els {
                    write_stmt(out, st, depth + 1);
                }
                write_indent(out, depth);
                out.push_str("}\n");
            }
        }
        Stmt::For {
            var,
            decl,
            init,
            cond_op,
            bound,
            step,
            body,
        } => {
            out.push_str("for (");
            if *decl {
                out.push_str("int ");
            }
            let _ = write!(out, "{var} = ");
            write_expr(out, init, 0);
            let _ = write!(out, "; {var} {} ", cond_op.c_name());
            write_expr(out, bound, 0);
            out.push_str("; ");
            if step.const_int() == Some(1) {
                let _ = write!(out, "{var}++");
            } else {
                let _ = write!(out, "{var} += ");
                write_expr(out, step, 0);
            }
            out.push_str(") {\n");
            for st in body {
                write_stmt(out, st, depth + 1);
            }
            write_indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::While { cond, body } => {
            out.push_str("while (");
            write_expr(out, cond, 0);
            out.push_str(") {\n");
            for st in body {
                write_stmt(out, st, depth + 1);
            }
            write_indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::SyncThreads => out.push_str("__syncthreads();\n"),
        Stmt::Break => out.push_str("break;\n"),
        Stmt::Return => out.push_str("return;\n"),
        Stmt::ExprStmt(e) => {
            write_expr(out, e, 0);
            out.push_str(";\n");
        }
    }
}

fn write_param(out: &mut String, p: &Param) {
    match p.ty {
        ParamTy::Ptr(elem) => {
            let _ = write!(out, "{} *{}", elem.c_name(), p.name);
        }
        ParamTy::Scalar(ty) => {
            let _ = write!(out, "{} {}", ty.c_name(), p.name);
        }
    }
}

/// Render one kernel as CUDA source.
pub fn kernel_to_string(k: &Kernel) -> String {
    let mut out = String::new();
    let _ = write!(out, "__global__ void {}(", k.name);
    for (i, p) in k.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_param(&mut out, p);
    }
    out.push_str(") {\n");
    for s in &k.body {
        write_stmt(&mut out, s, 1);
    }
    out.push_str("}\n");
    out
}

/// Render a whole module (defines first, then kernels).
pub fn module_to_string(m: &Module) -> String {
    let mut out = String::new();
    for (name, val) in &m.defines {
        let _ = writeln!(out, "#define {name} {val}");
    }
    if !m.defines.is_empty() {
        out.push('\n');
    }
    for (i, k) in m.kernels.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&kernel_to_string(k));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DType;

    #[test]
    fn atax_like_kernel_prints() {
        // Mirror of the paper's Fig. 1.
        let body = vec![
            Stmt::decl_i32("i", Expr::linear_tid()),
            Stmt::if_then(
                Expr::var("i").lt(Expr::int(40960)),
                vec![Stmt::for_up(
                    "j",
                    Expr::int(40960),
                    vec![Stmt::store_acc(
                        "tmp",
                        Expr::var("i"),
                        Expr::var("i")
                            .mul(Expr::int(40960))
                            .add(Expr::var("j"))
                            .index_into("A")
                            .mul(Expr::var("j").index_into("B")),
                    )],
                )],
            ),
        ];
        let k = Kernel::new(
            "atax_kernel1",
            vec![
                Param::ptr("A", DType::F32),
                Param::ptr("B", DType::F32),
                Param::ptr("tmp", DType::F32),
            ],
            body,
        );
        let s = kernel_to_string(&k);
        assert!(s.contains("__global__ void atax_kernel1(float *A, float *B, float *tmp)"));
        assert!(s.contains("int i = blockIdx.x * blockDim.x + threadIdx.x;"));
        assert!(s.contains("for (int j = 0; j < 40960; j++)"));
        assert!(s.contains("tmp[i] += A[i * 40960 + j] * B[j];"));
    }

    #[test]
    fn parens_only_where_needed() {
        // (a + b) * c needs parens; a + b * c does not.
        let e = Expr::var("a").add(Expr::var("b")).mul(Expr::var("c"));
        assert_eq!(expr_to_string(&e), "(a + b) * c");
        let e = Expr::var("a").add(Expr::var("b").mul(Expr::var("c")));
        assert_eq!(expr_to_string(&e), "a + b * c");
    }

    #[test]
    fn left_assoc_subtraction_parens() {
        // a - (b - c) must keep its parens.
        let e = Expr::var("a").sub(Expr::var("b").sub(Expr::var("c")));
        assert_eq!(expr_to_string(&e), "a - (b - c)");
        // (a - b) - c prints without them.
        let e = Expr::var("a").sub(Expr::var("b")).sub(Expr::var("c"));
        assert_eq!(expr_to_string(&e), "a - b - c");
    }

    #[test]
    fn float_literals_reparse_as_float() {
        assert_eq!(expr_to_string(&Expr::Float(0.0)), "0.0f");
        assert_eq!(expr_to_string(&Expr::Float(1.5)), "1.5f");
    }

    #[test]
    fn shared_decl_prints() {
        let s = Stmt::DeclShared {
            name: "dummy_shared".into(),
            elem: DType::F32,
            len: 12288,
        };
        let mut out = String::new();
        write_stmt(&mut out, &s, 0);
        assert_eq!(out, "__shared__ float dummy_shared[12288];\n");
    }

    #[test]
    fn comparison_inside_logical_and() {
        let e = Expr::var("w")
            .ge(Expr::int(0))
            .and(Expr::var("w").lt(Expr::int(4)));
        assert_eq!(expr_to_string(&e), "w >= 0 && w < 4");
    }
}
