//! Ergonomic kernel construction for tests and microbenchmarks.
//!
//! Most workloads in this repository are written as CUDA source strings and
//! parsed by `catt-frontend`; the builder exists for the synthetic
//! microbenchmarks (paper Fig. 3) and for property tests that generate
//! random kernels structurally.

use crate::expr::Expr;
use crate::kernel::{Kernel, Param};
use crate::stmt::Stmt;
use crate::types::DType;

/// Incremental kernel builder.
#[derive(Debug, Default)]
pub struct KernelBuilder {
    name: String,
    params: Vec<Param>,
    body: Vec<Stmt>,
}

impl KernelBuilder {
    /// Start a kernel named `name`.
    pub fn new(name: impl Into<String>) -> KernelBuilder {
        KernelBuilder {
            name: name.into(),
            params: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Add a `float *` parameter.
    pub fn ptr_f32(mut self, name: impl Into<String>) -> Self {
        self.params.push(Param::ptr(name, DType::F32));
        self
    }

    /// Add an `int *` parameter.
    pub fn ptr_i32(mut self, name: impl Into<String>) -> Self {
        self.params.push(Param::ptr(name, DType::I32));
        self
    }

    /// Add a scalar `int` parameter.
    pub fn scalar_i32(mut self, name: impl Into<String>) -> Self {
        self.params.push(Param::scalar(name, DType::I32));
        self
    }

    /// Add a scalar `float` parameter.
    pub fn scalar_f32(mut self, name: impl Into<String>) -> Self {
        self.params.push(Param::scalar(name, DType::F32));
        self
    }

    /// Append a statement to the body.
    pub fn stmt(mut self, s: Stmt) -> Self {
        self.body.push(s);
        self
    }

    /// Append several statements.
    pub fn stmts(mut self, s: impl IntoIterator<Item = Stmt>) -> Self {
        self.body.extend(s);
        self
    }

    /// Declare `int i = blockIdx.x * blockDim.x + threadIdx.x;` — the
    /// standard linearized thread id prologue.
    pub fn linear_tid(self, name: impl Into<String>) -> Self {
        let name = name.into();
        self.stmt(Stmt::decl_i32(name, Expr::linear_tid()))
    }

    /// Finish.
    pub fn build(self) -> Kernel {
        Kernel::new(self.name, self.params, self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_kernel_with_prologue() {
        let k = KernelBuilder::new("k")
            .ptr_f32("A")
            .scalar_i32("n")
            .linear_tid("i")
            .stmt(Stmt::store("A", Expr::var("i"), Expr::Float(0.0)))
            .build();
        assert_eq!(k.name, "k");
        assert_eq!(k.params.len(), 2);
        assert_eq!(k.body.len(), 2);
        assert_eq!(k.global_arrays(), vec!["A"]);
    }
}
