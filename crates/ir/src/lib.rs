//! # catt-ir — kernel IR for the CATT reproduction
//!
//! This crate defines the abstract syntax / intermediate representation for
//! the CUDA-C subset the whole project operates on:
//!
//! * [`expr::Expr`] — expressions (arithmetic, builtins such as
//!   `threadIdx.x`, array element reads, intrinsic calls);
//! * [`stmt::Stmt`] — statements (declarations, assignments, structured
//!   control flow, `__syncthreads()`);
//! * [`kernel::Kernel`] / [`kernel::Module`] — `__global__` functions with
//!   parameters, plus launch configurations;
//! * [`affine`] — extraction of the affine index form
//!   `C_tid * tid + C_i * i + c` from array index expressions (Eq. 5 of the
//!   paper), the basis of CATT's footprint analysis;
//! * [`printer`] — a CUDA-like pretty printer, used by the source-to-source
//!   transformation to emit throttled kernels;
//! * [`builder`] — ergonomic constructors for writing kernels directly in
//!   Rust (used by tests and microbenchmarks).
//!
//! The IR is deliberately *structured*: there is no `goto`, and loops/ifs
//! nest. This is what makes both the static analysis (loops are explicit)
//! and the SIMT divergence handling in the simulator tractable, and it
//! matches the regular structure of the Polybench/Rodinia kernels the paper
//! evaluates.

pub mod affine;
pub mod builder;
pub mod expr;
pub mod kernel;
pub mod printer;
pub mod stmt;
pub mod types;
pub mod visit;

pub use expr::{BinOp, Builtin, Expr, Intrinsic, UnOp};
pub use kernel::{Dim3, Kernel, KernelSpans, LaunchConfig, Module, Param, ParamTy};
pub use stmt::{LValue, Stmt};
pub use types::DType;
