//! Property tests for the affine index-form extraction: build random
//! affine expressions with *known* coefficients, obfuscate their shape
//! (association, subtraction, distribution), and require the analysis to
//! recover exactly `(C_tid, C_i)` — plus numeric agreement between the
//! extracted polynomial and direct expression evaluation.

use catt_ir::affine::{eval_poly, index_form, AffineEnv, Sym};
use catt_ir::expr::{BinOp, Builtin, Expr};
use proptest::prelude::*;

fn env() -> AffineEnv {
    let mut e = AffineEnv::with_launch((256, 1, 1), (64, 1, 1));
    let p = eval_poly(&Expr::linear_tid(), &e).unwrap();
    e.bind("i", p);
    e
}

/// Random structural variants of `c_tid*i + c_iter*j + c0`.
fn affine_expr(c_tid: i64, c_iter: i64, c0: i64, shape: u8) -> Expr {
    let i = Expr::var("i");
    let j = Expr::var("j");
    let t1 = i.clone().mul(Expr::int(c_tid));
    let t2 = j.clone().mul(Expr::int(c_iter));
    let t3 = Expr::int(c0);
    match shape % 6 {
        0 => t1.add(t2).add(t3),
        1 => t3.add(t2).add(t1),
        2 => t2.add(t1.add(t3)),
        // Distribute: (i + j) * c + i*(c_tid - c) + j*(c_iter - c) + c0
        3 => {
            let c = 2;
            i.clone()
                .add(j.clone())
                .mul(Expr::int(c))
                .add(i.mul(Expr::int(c_tid - c)))
                .add(j.mul(Expr::int(c_iter - c)))
                .add(t3)
        }
        // Subtraction: i*(c_tid+5) + j*c_iter + c0 - i*5
        4 => i
            .clone()
            .mul(Expr::int(c_tid + 5))
            .add(t2)
            .add(t3)
            .sub(i.mul(Expr::int(5))),
        // Constant-folded multiplier: i * (2 * (c_tid/2)) + rem…
        _ => {
            let half = c_tid / 2;
            let rest = c_tid - half;
            i.clone()
                .mul(Expr::int(half))
                .add(i.mul(Expr::int(rest)))
                .add(t2)
                .add(t3)
        }
    }
}

proptest! {
    #[test]
    fn recovers_exact_coefficients(
        c_tid in -4096i64..4096,
        c_iter in -128i64..128,
        c0 in -1000i64..1000,
        shape in 0u8..6,
    ) {
        let e = affine_expr(c_tid, c_iter, c0, shape);
        let f = index_form(&e, Some("j"), &env());
        prop_assert_eq!(f.c_tid, Some(c_tid));
        prop_assert_eq!(f.c_iter, Some(c_iter));
    }

    /// The polynomial evaluates to the same value as the expression under
    /// random assignments of threadIdx/blockIdx/j.
    #[test]
    fn polynomial_agrees_with_direct_evaluation(
        c_tid in -64i64..64,
        c_iter in -64i64..64,
        c0 in -100i64..100,
        shape in 0u8..6,
        tx in 0i64..256,
        bx in 0i64..64,
        j in 0i64..512,
    ) {
        let e = affine_expr(c_tid, c_iter, c0, shape);
        let env = env();
        let p = eval_poly(&e, &env).unwrap();
        // Direct: i = bx*256 + tx.
        let i = bx * 256 + tx;
        let direct = c_tid * i + c_iter * j + c0;
        let from_poly = p.coeff(&Sym::ThreadIdx(0)) * tx
            + p.coeff(&Sym::BlockIdx(0)) * bx
            + p.coeff(&Sym::Var("j".into())) * j
            + p.c0;
        prop_assert_eq!(direct, from_poly);
    }

    /// Anything containing an indirect load is irregular, no matter how
    /// it is wrapped in affine arithmetic.
    #[test]
    fn indirection_always_poisons(
        c in -64i64..64,
        wrap in 0u8..3,
    ) {
        let gather = Expr::Index("cols".into(), Box::new(Expr::var("j")));
        let e = match wrap {
            0 => gather.add(Expr::int(c)),
            1 => Expr::var("i").mul(Expr::int(c)).add(gather),
            _ => gather.mul(Expr::int(1)).add(Expr::var("j")),
        };
        let f = index_form(&e, Some("j"), &env());
        prop_assert_eq!(f.c_tid, None);
        prop_assert_eq!(f.c_iter, None);
    }

    /// Multiplying two thread-dependent terms is never affine.
    #[test]
    fn nonlinear_products_are_rejected(scale in 1i64..100) {
        let e = Expr::var("i").mul(Expr::var("j")).mul(Expr::int(scale));
        let env = env();
        prop_assert!(eval_poly(&e, &env).is_none());
    }

    /// Builtin shifts: using threadIdx.y in the index contributes to the
    /// y-coefficient, never to the x one.
    #[test]
    fn y_dimension_does_not_leak_into_x(c in 1i64..64) {
        let e = Expr::Builtin(Builtin::ThreadIdxY).mul(Expr::int(c)).add(Expr::var("j"));
        let f = index_form(&e, Some("j"), &env());
        prop_assert_eq!(f.c_tid, Some(0));
        prop_assert_eq!(f.c_iter, Some(1));
    }

    /// Shifting left by k equals multiplying by 2^k in the extracted form.
    #[test]
    fn shl_matches_mul(k in 0u32..8, c_iter in -16i64..16) {
        let shifted = Expr::Binary(
            BinOp::Shl,
            Box::new(Expr::var("i")),
            Box::new(Expr::int(k as i64)),
        )
        .add(Expr::var("j").mul(Expr::int(c_iter)));
        let f = index_form(&shifted, Some("j"), &env());
        prop_assert_eq!(f.c_tid, Some(1 << k));
        prop_assert_eq!(f.c_iter, Some(c_iter));
    }
}
