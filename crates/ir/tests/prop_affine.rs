//! Randomized tests for the affine index-form extraction: build random
//! affine expressions with *known* coefficients, obfuscate their shape
//! (association, subtraction, distribution), and require the analysis to
//! recover exactly `(C_tid, C_i)` — plus numeric agreement between the
//! extracted polynomial and direct expression evaluation.
//!
//! Cases are drawn from a fixed-seed [`catt_prng::Rng`] (the offline
//! stand-in for proptest), so every run exercises the same cases and any
//! failure reproduces exactly.

use catt_ir::affine::{eval_poly, index_form, AffineEnv, Sym};
use catt_ir::expr::{BinOp, Builtin, Expr};
use catt_prng::Rng;

fn env() -> AffineEnv {
    let mut e = AffineEnv::with_launch((256, 1, 1), (64, 1, 1));
    let p = eval_poly(&Expr::linear_tid(), &e).unwrap();
    e.bind("i", p);
    e
}

/// Random structural variants of `c_tid*i + c_iter*j + c0`.
fn affine_expr(c_tid: i64, c_iter: i64, c0: i64, shape: u8) -> Expr {
    let i = Expr::var("i");
    let j = Expr::var("j");
    let t1 = i.clone().mul(Expr::int(c_tid));
    let t2 = j.clone().mul(Expr::int(c_iter));
    let t3 = Expr::int(c0);
    match shape % 6 {
        0 => t1.add(t2).add(t3),
        1 => t3.add(t2).add(t1),
        2 => t2.add(t1.add(t3)),
        // Distribute: (i + j) * c + i*(c_tid - c) + j*(c_iter - c) + c0
        3 => {
            let c = 2;
            i.clone()
                .add(j.clone())
                .mul(Expr::int(c))
                .add(i.mul(Expr::int(c_tid - c)))
                .add(j.mul(Expr::int(c_iter - c)))
                .add(t3)
        }
        // Subtraction: i*(c_tid+5) + j*c_iter + c0 - i*5
        4 => i
            .clone()
            .mul(Expr::int(c_tid + 5))
            .add(t2)
            .add(t3)
            .sub(i.mul(Expr::int(5))),
        // Constant-folded multiplier: i * (2 * (c_tid/2)) + rem…
        _ => {
            let half = c_tid / 2;
            let rest = c_tid - half;
            i.clone()
                .mul(Expr::int(half))
                .add(i.mul(Expr::int(rest)))
                .add(t2)
                .add(t3)
        }
    }
}

#[test]
fn recovers_exact_coefficients() {
    let mut r = Rng::from_tag("affine-coefficients");
    for case in 0..512 {
        let c_tid = r.range_i64(-4096, 4096);
        let c_iter = r.range_i64(-128, 128);
        let c0 = r.range_i64(-1000, 1000);
        let shape = r.range_i64(0, 6) as u8;
        let e = affine_expr(c_tid, c_iter, c0, shape);
        let f = index_form(&e, Some("j"), &env());
        assert_eq!(
            f.c_tid,
            Some(c_tid),
            "case {case}: shape {shape}, ({c_tid},{c_iter},{c0})"
        );
        assert_eq!(
            f.c_iter,
            Some(c_iter),
            "case {case}: shape {shape}, ({c_tid},{c_iter},{c0})"
        );
    }
}

/// The polynomial evaluates to the same value as the expression under
/// random assignments of threadIdx/blockIdx/j.
#[test]
fn polynomial_agrees_with_direct_evaluation() {
    let mut r = Rng::from_tag("affine-eval");
    let env = env();
    for case in 0..512 {
        let c_tid = r.range_i64(-64, 64);
        let c_iter = r.range_i64(-64, 64);
        let c0 = r.range_i64(-100, 100);
        let shape = r.range_i64(0, 6) as u8;
        let tx = r.range_i64(0, 256);
        let bx = r.range_i64(0, 64);
        let j = r.range_i64(0, 512);
        let e = affine_expr(c_tid, c_iter, c0, shape);
        let p = eval_poly(&e, &env).unwrap();
        // Direct: i = bx*256 + tx.
        let i = bx * 256 + tx;
        let direct = c_tid * i + c_iter * j + c0;
        let from_poly = p.coeff(&Sym::ThreadIdx(0)) * tx
            + p.coeff(&Sym::BlockIdx(0)) * bx
            + p.coeff(&Sym::Var("j".into())) * j
            + p.c0;
        assert_eq!(direct, from_poly, "case {case}: shape {shape}");
    }
}

/// Anything containing an indirect load is irregular, no matter how it is
/// wrapped in affine arithmetic.
#[test]
fn indirection_always_poisons() {
    let mut r = Rng::from_tag("affine-indirect");
    for case in 0..256 {
        let c = r.range_i64(-64, 64);
        let wrap = r.range_i64(0, 3) as u8;
        let gather = Expr::Index("cols".into(), Box::new(Expr::var("j")));
        let e = match wrap {
            0 => gather.add(Expr::int(c)),
            1 => Expr::var("i").mul(Expr::int(c)).add(gather),
            _ => gather.mul(Expr::int(1)).add(Expr::var("j")),
        };
        let f = index_form(&e, Some("j"), &env());
        assert_eq!(f.c_tid, None, "case {case}: wrap {wrap}");
        assert_eq!(f.c_iter, None, "case {case}: wrap {wrap}");
    }
}

/// Multiplying two thread-dependent terms is never affine.
#[test]
fn nonlinear_products_are_rejected() {
    let mut r = Rng::from_tag("affine-nonlinear");
    let env = env();
    for _ in 0..128 {
        let scale = r.range_i64(1, 100);
        let e = Expr::var("i").mul(Expr::var("j")).mul(Expr::int(scale));
        assert!(eval_poly(&e, &env).is_none(), "scale {scale}");
    }
}

/// Builtin shifts: using threadIdx.y in the index contributes to the
/// y-coefficient, never to the x one.
#[test]
fn y_dimension_does_not_leak_into_x() {
    let mut r = Rng::from_tag("affine-ydim");
    for _ in 0..128 {
        let c = r.range_i64(1, 64);
        let e = Expr::Builtin(Builtin::ThreadIdxY)
            .mul(Expr::int(c))
            .add(Expr::var("j"));
        let f = index_form(&e, Some("j"), &env());
        assert_eq!(f.c_tid, Some(0), "c {c}");
        assert_eq!(f.c_iter, Some(1), "c {c}");
    }
}

/// Shifting left by k equals multiplying by 2^k in the extracted form.
#[test]
fn shl_matches_mul() {
    let mut r = Rng::from_tag("affine-shl");
    for _ in 0..128 {
        let k = r.range_u32(0, 8);
        let c_iter = r.range_i64(-16, 16);
        let shifted = Expr::Binary(
            BinOp::Shl,
            Box::new(Expr::var("i")),
            Box::new(Expr::int(k as i64)),
        )
        .add(Expr::var("j").mul(Expr::int(c_iter)));
        let f = index_form(&shifted, Some("j"), &env());
        assert_eq!(f.c_tid, Some(1 << k), "k {k}");
        assert_eq!(f.c_iter, Some(c_iter), "k {k} c_iter {c_iter}");
    }
}
