//! The pass-cache contract: memoized recompiles skip parse/analyze
//! (observable through the hit counters), failures replay their
//! diagnostics, a disabled cache never counts anything, and a panicking
//! pass is contained as an `E030` diagnostic instead of an unwind.
//!
//! The cache and its counters are process-global, so every test
//! serializes on one lock and resets the cache first.

use catt_core::{pass_cache_stats, reset_pass_cache, Pass, PassManager, Pipeline, PipelineError};
use catt_diag::Diagnostic;
use catt_sim::GpuConfig;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

fn stats_map() -> HashMap<&'static str, catt_core::PassStats> {
    pass_cache_stats().into_iter().collect()
}

const SRC: &str = "#define NX 64\n\
                   __global__ void k(float *a, float *b, int n) {\n\
                   int i = blockIdx.x * blockDim.x + threadIdx.x;\n\
                   if (i < NX) { for (int j = 0; j < NX; j++) { a[i] += b[j]; } }\n\
                   }\n";

fn pipeline() -> Pipeline {
    Pipeline::new(GpuConfig::titan_v_1sm()).with_pass_cache(true)
}

fn launches() -> Vec<(&'static str, catt_ir::LaunchConfig)> {
    vec![("k", catt_ir::LaunchConfig::d1(320, 256))]
}

#[test]
fn memoized_recompile_skips_parse_and_analyze() {
    let _g = serial();
    reset_pass_cache();
    let pipe = pipeline();

    let cold = pipe.compile_source(SRC, &launches()).expect("cold compile");
    let after_cold = stats_map();
    assert_eq!(after_cold["parse"].hits, 0, "cold run cannot hit");
    assert_eq!(after_cold["parse"].misses, 1);
    assert_eq!(after_cold["analyze"].hits, 0);
    assert_eq!(after_cold["analyze"].misses, 1);

    let warm = pipe.compile_source(SRC, &launches()).expect("warm compile");
    let after_warm = stats_map();
    assert_eq!(
        after_warm["parse"].hits, 1,
        "recompile must reuse the parse"
    );
    assert_eq!(after_warm["parse"].misses, 1, "no second parse miss");
    assert_eq!(
        after_warm["analyze"].hits, 1,
        "recompile must reuse the analysis"
    );
    assert_eq!(after_warm["analyze"].misses, 1);

    // Replayed results are the real results.
    assert_eq!(
        cold.kernels[0].emitted_source,
        warm.kernels[0].emitted_source
    );
}

#[test]
fn analysis_cache_keys_on_launch_and_config() {
    let _g = serial();
    reset_pass_cache();
    let pipe = pipeline();

    pipe.compile_source(SRC, &launches()).expect("first");
    // Same source, different launch: parse hits, analyze misses.
    pipe.compile_source(SRC, &[("k", catt_ir::LaunchConfig::d1(160, 128))])
        .expect("second");
    let s = stats_map();
    assert_eq!(s["parse"].hits, 1);
    assert_eq!(s["analyze"].hits, 0, "launch is part of the analysis key");
    assert_eq!(s["analyze"].misses, 2);

    // Different GPU config: analyze misses again.
    let mut config = GpuConfig::titan_v_1sm();
    config.l1_cap_bytes = Some(32 * 1024);
    Pipeline::new(config)
        .with_pass_cache(true)
        .compile_source(SRC, &launches())
        .expect("third");
    let s = stats_map();
    assert_eq!(s["parse"].hits, 2);
    assert_eq!(s["analyze"].misses, 3, "config is part of the analysis key");
}

#[test]
fn failed_parses_replay_their_diagnostics() {
    let _g = serial();
    reset_pass_cache();
    let pipe = pipeline();
    let bad = "__global__ void k(float *a, int n) { a[0] = @; }";

    let e1: PipelineError = pipe.compile_source(bad, &launches()).unwrap_err();
    let e2: PipelineError = pipe.compile_source(bad, &launches()).unwrap_err();
    assert!(!e1.diagnostics.is_empty());
    assert_eq!(
        e1.diagnostics, e2.diagnostics,
        "cached failure replays verbatim"
    );
    let s = stats_map();
    assert_eq!(s["parse"].hits, 1, "the failure itself is memoized");
    assert_eq!(s["parse"].misses, 1);
}

#[test]
fn disabled_cache_reruns_every_pass() {
    let _g = serial();
    reset_pass_cache();
    let pipe = Pipeline::new(GpuConfig::titan_v_1sm()).with_pass_cache(false);

    pipe.compile_source(SRC, &launches()).expect("first");
    pipe.compile_source(SRC, &launches()).expect("second");
    let s = stats_map();
    assert!(
        s.values().all(|v| v.hits == 0 && v.misses == 0),
        "a disabled cache must not count at all: {s:?}"
    );
}

/// A pass that always panics: the manager must convert the unwind into
/// an `E030` diagnostic naming the pass, and must not cache it.
struct PanickyPass;

impl Pass for PanickyPass {
    type Input = str;
    type Output = ();

    fn name(&self) -> &'static str {
        "panicky"
    }

    fn run(&self, _input: &str, _diags: &mut Vec<Diagnostic>) -> Option<()> {
        panic!("deliberate test panic");
    }
}

#[test]
fn escaped_panics_become_e030_diagnostics() {
    let _g = serial();
    reset_pass_cache();
    let manager = PassManager::with_cache(true);
    let mut diags = Vec::new();
    let out = manager.run(&PanickyPass, "anything", &mut diags);
    assert!(out.is_none());
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code.as_str(), "E030");
    assert_eq!(diags[0].pass, Some("panicky"));
    assert!(
        diags[0].message.contains("deliberate test panic"),
        "panic payload surfaced: {}",
        diags[0].message
    );
}
