//! Fault-injection integration tests: deliberate failures (worker
//! panics, corrupt cache lines, failed transforms, slow jobs) must be
//! absorbed by the guard rails — faulted candidates excluded from the
//! argmin, corrupt lines skipped with a count, transforms falling back
//! to the original kernel — never crash the run.
//!
//! Plans are passed programmatically (`Engine::with_fault_plan` /
//! `Pipeline::with_fault_plan`), not through `CATT_FAULT_PLAN`, so these
//! tests cannot race each other; the env-driven path is covered by
//! `fault_env.rs` under `scripts/check.sh`.

use catt_core::bftt::{sweep_on, CandidateOutcome};
use catt_core::engine::{Engine, JobError};
use catt_core::fault::FaultPlan;
use catt_core::pipeline::Pipeline;
use catt_frontend::parse_kernel;
use catt_ir::kernel::{Kernel, LaunchConfig};
use catt_sim::{Arg, GlobalMem, Gpu, GpuConfig, LaunchStats};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

const N: usize = 256;

fn mv_kernel() -> Kernel {
    let src = format!(
        "#define N {N}
         __global__ void mv(float *A, float *B, float *tmp) {{
             int i = blockIdx.x * blockDim.x + threadIdx.x;
             if (i < N) {{
                 for (int j = 0; j < N; j++) {{
                     tmp[i] += A[i * N + j] * B[j];
                 }}
             }}
         }}"
    );
    parse_kernel(&src).unwrap()
}

fn simulate(kernels: &[Kernel], launch: LaunchConfig, cfg: &GpuConfig) -> LaunchStats {
    let mut mem = GlobalMem::new();
    let a = mem.alloc_f32(&vec![1.0; N * N]);
    let b = mem.alloc_f32(&vec![1.0; N]);
    let tmp = mem.alloc_zeroed(N as u32);
    let mut gpu = Gpu::new(cfg.clone());
    gpu.launch(
        &kernels[0],
        launch,
        &[Arg::Buf(a), Arg::Buf(b), Arg::Buf(tmp)],
        &mut mem,
    )
    .unwrap()
}

fn contended_config() -> GpuConfig {
    let mut cfg = GpuConfig::titan_v_1sm();
    cfg.l1_cap_bytes = Some(32 * 1024);
    cfg
}

/// A non-baseline candidate whose worker panics is recorded as
/// `Faulted`, excluded from the argmin, and the sweep still returns the
/// best *healthy* setting.
#[test]
fn sweep_survives_an_injected_faulting_candidate() {
    let kernel = mv_kernel();
    let launch = LaunchConfig::d1(1, 256);
    let cfg = contended_config();
    // One worker: the engine-lifetime job counter equals the grid index,
    // so job 2 is the third sweep candidate (never the baseline).
    let engine = Engine::with_workers(1).with_fault_plan(FaultPlan {
        panic_at_job: Some(2),
        ..FaultPlan::none()
    });
    let result = sweep_on(
        &engine,
        "faulty",
        std::slice::from_ref(&kernel),
        launch,
        &cfg,
        |kernels: &[Kernel], c: &GpuConfig| simulate(kernels, launch, c),
    )
    .expect("a faulted non-baseline candidate must not fail the sweep");

    let faulted = result.faulted();
    assert_eq!(faulted.len(), 1, "exactly one candidate faulted");
    assert!(
        faulted[0].2.message.contains("fault injection"),
        "{}",
        faulted[0].2
    );
    assert_eq!(
        result.candidates.len() + 1,
        result.outcomes.len(),
        "healthy candidates plus the faulted one cover the grid"
    );
    // The faulted (n, m) is not the winner and the baseline survived.
    let best = result.best_candidate();
    assert_ne!((best.n, best.m), (faulted[0].0, faulted[0].1));
    assert_eq!((result.baseline().n, result.baseline().m), (1, 0));
    // The reference sweep (no faults) agrees on the winner unless the
    // fault happened to hit it; either way this sweep completed.
    assert!(result.best < result.candidates.len());
    for outcome in &result.outcomes {
        if let CandidateOutcome::Faulted { n, m, error } = outcome {
            assert_eq!((*n, *m), (faulted[0].0, faulted[0].1));
            assert!(!error.retryable, "a panic is fatal, not retryable");
        }
    }
}

/// Retryable failures are retried with backoff up to the policy bound;
/// a job that recovers on the second attempt reports success.
#[test]
fn transient_failures_are_retried() {
    let engine = Engine::with_workers(1).with_retry_policy(2, Duration::from_millis(1));
    let attempts = AtomicUsize::new(0);
    let out = engine.run_jobs("flaky", &[()], |_, _| {
        if attempts.fetch_add(1, Ordering::SeqCst) == 0 {
            Err(JobError::transient("flaky", "first attempt loses"))
        } else {
            Ok(42)
        }
    });
    assert_eq!(out, vec![Ok(42)]);
    assert_eq!(attempts.load(Ordering::SeqCst), 2);
}

/// Fatal failures (and panics) are not retried.
#[test]
fn fatal_failures_are_not_retried() {
    let engine = Engine::with_workers(1).with_retry_policy(3, Duration::from_millis(1));
    let attempts = AtomicUsize::new(0);
    let out = engine.run_jobs("fatal", &[()], |_, _| -> Result<u32, JobError> {
        attempts.fetch_add(1, Ordering::SeqCst);
        Err(JobError::fatal("fatal", "unrecoverable"))
    });
    assert!(out[0].is_err());
    assert_eq!(attempts.load(Ordering::SeqCst), 1, "no retry on fatal");

    let panics = AtomicUsize::new(0);
    let out = engine.run_jobs("panicky", &[()], |_, _| -> Result<u32, JobError> {
        panics.fetch_add(1, Ordering::SeqCst);
        panic!("boom");
    });
    assert!(out[0].is_err());
    assert_eq!(panics.load(Ordering::SeqCst), 1, "no retry on panic");
}

/// A retry budget that runs out surfaces the last error.
#[test]
fn exhausted_retries_surface_the_error() {
    let engine = Engine::with_workers(1).with_retry_policy(1, Duration::from_millis(1));
    let attempts = AtomicUsize::new(0);
    let out = engine.run_jobs("doomed", &[()], |_, _| -> Result<u32, JobError> {
        attempts.fetch_add(1, Ordering::SeqCst);
        Err(JobError::transient("doomed", "always loses"))
    });
    assert_eq!(attempts.load(Ordering::SeqCst), 2, "1 try + 1 retry");
    assert!(out[0]
        .as_ref()
        .unwrap_err()
        .message
        .contains("always loses"));
}

/// The watchdog counts (but does not kill) jobs over the wall-clock
/// deadline.
#[test]
fn watchdog_counts_jobs_over_deadline() {
    let engine = Engine::with_workers(1)
        .with_deadline(Some(Duration::from_nanos(1)))
        .with_progress(catt_core::Progress::Off);
    let out = engine.run_jobs("slow", &[1u32, 2], |_, &j| {
        std::thread::sleep(Duration::from_millis(2));
        Ok(j)
    });
    assert_eq!(out, vec![Ok(1), Ok(2)], "overruns still complete");
    assert_eq!(engine.deadline_exceeded(), 2);
}

/// The `corrupt-cache` fault writes one bad checksum; the next engine
/// over the same directory skips exactly that line, recomputes, and
/// leaves a clean file behind.
#[test]
fn injected_cache_corruption_is_skipped_and_repaired() {
    let dir = std::env::temp_dir().join(format!("catt-faultcache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let kernel = mv_kernel();
    let launch = LaunchConfig::d1(1, 256);
    let cfg = contended_config();
    let computed = AtomicUsize::new(0);
    let run_on = |engine: &Engine| {
        engine
            .sim_app(
                "chaos",
                std::slice::from_ref(&kernel),
                &[launch],
                &cfg,
                || {
                    computed.fetch_add(1, Ordering::SeqCst);
                    simulate(std::slice::from_ref(&kernel), launch, &cfg)
                },
            )
            .expect("sim_app succeeds")
    };

    let sick = Engine::persistent(&dir).with_fault_plan(FaultPlan {
        corrupt_cache: true,
        ..FaultPlan::none()
    });
    let cold = run_on(&sick);
    assert_eq!(computed.load(Ordering::SeqCst), 1);

    // The corrupted line is skipped (counted), the entry recomputed.
    let second = Engine::persistent(&dir);
    assert_eq!(second.cache_counters().skipped, 1);
    let warm = run_on(&second);
    assert_eq!(
        computed.load(Ordering::SeqCst),
        2,
        "corrupt entry recomputed"
    );
    assert_eq!(cold.to_json_fields(), warm.to_json_fields());

    // The rewrite-on-load plus the recomputed insert leave a clean file.
    let third = Engine::persistent(&dir);
    assert_eq!(third.cache_counters().skipped, 0);
    run_on(&third);
    assert_eq!(computed.load(Ordering::SeqCst), 2, "third run is warm");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite (d): garble one line of a healthy cache file by hand; the
/// warm rerun succeeds, exactly one skipped entry is reported, and the
/// file is rewritten clean.
#[test]
fn hand_garbled_cache_line_is_skipped_with_count() {
    let dir = std::env::temp_dir().join(format!("catt-garblecache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let kernel = mv_kernel();
    let launch = LaunchConfig::d1(1, 256);
    let cfg = contended_config();
    let mut bigger = cfg.clone();
    bigger.l1_cap_bytes = Some(64 * 1024);
    let computed = AtomicUsize::new(0);
    let run_on = |engine: &Engine, c: &GpuConfig| {
        engine
            .sim_app(
                "garble",
                std::slice::from_ref(&kernel),
                &[launch],
                c,
                || {
                    computed.fetch_add(1, Ordering::SeqCst);
                    simulate(std::slice::from_ref(&kernel), launch, c)
                },
            )
            .expect("sim_app succeeds")
    };

    // Two healthy entries.
    let first = Engine::persistent(&dir);
    run_on(&first, &cfg);
    run_on(&first, &bigger);
    assert_eq!(computed.load(Ordering::SeqCst), 2);

    // Garble the middle of the first line (keeps the line count intact).
    let path = dir.join("cache.jsonl");
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines: Vec<String> = text.lines().map(String::from).collect();
    assert_eq!(lines.len(), 2, "one line per entry");
    let mid = lines[0].len() / 2;
    lines[0].replace_range(mid..mid + 8, "!corrupt");
    std::fs::write(&path, lines.join("\n") + "\n").unwrap();

    // Warm rerun: one entry lost (recomputed), one served; skipped == 1.
    let reloaded = Engine::persistent(&dir);
    assert_eq!(reloaded.cache_counters().skipped, 1);
    run_on(&reloaded, &cfg);
    run_on(&reloaded, &bigger);
    assert_eq!(
        computed.load(Ordering::SeqCst),
        3,
        "exactly the garbled entry recomputes"
    );

    // The load rewrote the file clean; after the recompute both entries
    // parse again.
    let clean = Engine::persistent(&dir);
    assert_eq!(clean.cache_counters().skipped, 0);
    run_on(&clean, &cfg);
    run_on(&clean, &bigger);
    assert_eq!(computed.load(Ordering::SeqCst), 3, "fully warm");

    let _ = std::fs::remove_dir_all(&dir);
}

/// `fail-transform` forces the multiversion fallback: the compiled
/// kernel is the original code with a recorded diagnostic, and the
/// pipeline still succeeds.
#[test]
fn failed_transform_falls_back_to_the_original_kernel() {
    let kernel = mv_kernel();
    let launch = LaunchConfig::d1(1, 256);
    let pipe = Pipeline::new(contended_config()).with_fault_plan(FaultPlan {
        fail_transform: true,
        ..FaultPlan::none()
    });
    let compiled = pipe
        .compile_kernel(&kernel, launch)
        .expect("pipeline succeeds");
    assert!(compiled.is_fallback());
    assert_eq!(
        compiled.transformed, kernel,
        "fallback ships the original code"
    );
    let diag = compiled.fallback_diagnostic.as_ref().unwrap();
    assert!(diag.message.contains("fault injection"), "{}", diag.message);
    assert_eq!(diag.code.as_str(), "W002", "typed fault-injection code");

    // The healthy pipeline transforms the same kernel (the fault, not
    // the kernel, caused the fallback) and multiversion surfaces the
    // diagnostics.
    let healthy = Pipeline::new(contended_config())
        .compile_kernel(&kernel, launch)
        .unwrap();
    assert!(!healthy.is_fallback());

    let mv = pipe
        .compile_multi(&kernel, &[launch])
        .expect("multiversion succeeds under fallback");
    let diags = mv.fallback_diagnostics();
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].0, 0);
}
