//! Multi-writer hardening for the persistent simcache (DESIGN.md
//! "Evaluation engine": two engines sharing one directory — two `catt
//! serve` workers, a bench and a daemon — must not lose each other's
//! acknowledged lines). Inserts append one checksummed line and flushes
//! merge-then-rewrite, both under the cross-process `cache.jsonl.lock`,
//! making the content-addressed union conflict-free; this suite drives
//! two independent `Engine` instances (separate in-memory maps, so only
//! the file protocol can save them) from racing threads and checks
//! nothing is lost or corrupt.

use catt_core::engine::Engine;
use catt_frontend::parse_kernel;
use catt_ir::{Kernel, LaunchConfig};
use catt_sim::{Arg, GlobalMem, Gpu, GpuConfig, LaunchStats};

fn kernel() -> Kernel {
    parse_kernel(
        "__global__ void k(float *a, int n) {
             int i = blockIdx.x * blockDim.x + threadIdx.x;
             if (i < n) { a[i] = a[i] * 2.0f; }
         }",
    )
    .unwrap()
}

fn simulate(k: &Kernel, launch: LaunchConfig, n: usize) -> LaunchStats {
    let mut mem = GlobalMem::new();
    let buf = mem.alloc_f32(&vec![1.0; n]);
    Gpu::new(GpuConfig::small())
        .launch(k, launch, &[Arg::Buf(buf), Arg::I32(n as i32)], &mut mem)
        .unwrap()
}

/// Two engines over the same directory, racing inserts from two threads:
/// a fresh load afterwards must see every acknowledged entry (no lost
/// updates from the rewrite race) and zero corrupt lines.
#[test]
fn concurrent_writers_lose_nothing() {
    let dir = std::env::temp_dir().join(format!("catt-simcache-race-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    const PER_WRITER: usize = 40;

    let k = kernel();
    std::thread::scope(|scope| {
        for writer in 0..2 {
            let dir = dir.clone();
            let k = k.clone();
            scope.spawn(move || {
                let engine = Engine::persistent(&dir);
                for i in 0..PER_WRITER {
                    // Distinct scopes → distinct content-addressed keys;
                    // the stats payload itself may repeat (that's fine,
                    // keys are what the store is addressed by).
                    let scope_name = format!("race-w{writer}-{i}");
                    let launch = LaunchConfig::d1(1 + i as u32 % 4, 32);
                    let stats = engine
                        .sim_app(
                            &scope_name,
                            std::slice::from_ref(&k),
                            &[launch],
                            &GpuConfig::small(),
                            || simulate(&k, launch, 64),
                        )
                        .unwrap();
                    assert!(stats.cycles > 0);
                }
            });
        }
    });

    // A fresh engine loads the merged file: every insert both writers
    // acknowledged must be a hit now, with zero corrupt lines skipped.
    let fresh = Engine::persistent(&dir);
    assert_eq!(
        fresh.cache_counters().skipped,
        0,
        "merged cache file has corrupt lines"
    );
    for writer in 0..2 {
        for i in 0..PER_WRITER {
            let scope_name = format!("race-w{writer}-{i}");
            let launch = LaunchConfig::d1(1 + i as u32 % 4, 32);
            let got = fresh.sim_app(
                &scope_name,
                std::slice::from_ref(&k),
                &[launch],
                &GpuConfig::small(),
                || panic!("lost cache entry: {scope_name} should be a hit"),
            );
            assert!(got.is_ok(), "{scope_name}: {got:?}");
        }
    }
    let c = fresh.cache_counters();
    assert_eq!(c.misses, 0, "every lookup should hit: {c:?}");
    assert_eq!(c.hits, 2 * PER_WRITER as u64);
    // No lock file left behind by either writer.
    assert!(
        !dir.join("cache.jsonl.lock").exists(),
        "lock file leaked after writers exited"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A stale lock (orphaned by a killed process) must not wedge persists:
/// the next writer breaks it by age and proceeds.
#[test]
fn stale_lock_is_broken_not_wedging() {
    let dir = std::env::temp_dir().join(format!("catt-simcache-stale-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let lock = dir.join("cache.jsonl.lock");
    std::fs::write(&lock, "99999").unwrap();
    // Age the lock file past the staleness horizon by back-dating mtime.
    // `set_modified` needs no external crates and exists since 1.75.
    let old = std::time::SystemTime::now() - std::time::Duration::from_secs(600);
    std::fs::File::options()
        .write(true)
        .open(&lock)
        .unwrap()
        .set_modified(old)
        .unwrap();

    let k = kernel();
    let engine = Engine::persistent(&dir);
    let launch = LaunchConfig::d1(2, 32);
    let t0 = std::time::Instant::now();
    engine
        .sim_app(
            "stale-lock",
            std::slice::from_ref(&k),
            &[launch],
            &GpuConfig::small(),
            || simulate(&k, launch, 64),
        )
        .unwrap();
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(5),
        "persist blocked on an orphaned lock"
    );
    // The entry made it to disk despite the pre-existing stale lock.
    let fresh = Engine::persistent(&dir);
    let hit = fresh.sim_app(
        "stale-lock",
        std::slice::from_ref(&k),
        &[launch],
        &GpuConfig::small(),
        || panic!("entry written under a broken stale lock was lost"),
    );
    assert!(hit.is_ok(), "{hit:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
