//! Integration tests of the evaluation engine (ISSUE: engine determinism
//! and cache correctness): results must be byte-identical regardless of
//! worker count, warm (cached) reruns must equal cold runs, the digest
//! must invalidate when the GPU configuration or kernel source changes,
//! and the persistent JSONL layer must round-trip across processes
//! (modelled here as two engine instances over one directory).

use catt_core::bftt::sweep_on;
use catt_core::engine::{job_digest, Engine};
use catt_frontend::parse_kernel;
use catt_ir::kernel::{Kernel, LaunchConfig};
use catt_sim::{Arg, GlobalMem, Gpu, GpuConfig, LaunchStats};
use std::sync::atomic::{AtomicUsize, Ordering};

const N: usize = 256;

fn mv_kernel() -> Kernel {
    let src = format!(
        "#define N {N}
         __global__ void mv(float *A, float *B, float *tmp) {{
             int i = blockIdx.x * blockDim.x + threadIdx.x;
             if (i < N) {{
                 for (int j = 0; j < N; j++) {{
                     tmp[i] += A[i * N + j] * B[j];
                 }}
             }}
         }}"
    );
    parse_kernel(&src).unwrap()
}

fn simulate(kernels: &[Kernel], launch: LaunchConfig, cfg: &GpuConfig) -> LaunchStats {
    let mut mem = GlobalMem::new();
    let a = mem.alloc_f32(&vec![1.0; N * N]);
    let b = mem.alloc_f32(&vec![1.0; N]);
    let tmp = mem.alloc_zeroed(N as u32);
    let mut gpu = Gpu::new(cfg.clone());
    gpu.launch(
        &kernels[0],
        launch,
        &[Arg::Buf(a), Arg::Buf(b), Arg::Buf(tmp)],
        &mut mem,
    )
    .unwrap()
}

fn contended_config() -> GpuConfig {
    let mut cfg = GpuConfig::titan_v_1sm();
    cfg.l1_cap_bytes = Some(32 * 1024);
    cfg
}

/// Same inputs must produce byte-identical statistics whether the sweep
/// runs on one worker or many — result ordering and content must not
/// depend on scheduling.
#[test]
fn sweep_results_are_identical_across_worker_counts() {
    let kernel = mv_kernel();
    let launch = LaunchConfig::d1(1, 256);
    let cfg = contended_config();
    let run = |kernels: &[Kernel], c: &GpuConfig| simulate(kernels, launch, c);

    let serial = sweep_on(
        &Engine::with_workers(1),
        "det",
        std::slice::from_ref(&kernel),
        launch,
        &cfg,
        run,
    )
    .expect("serial sweep succeeds");
    let parallel = sweep_on(
        &Engine::with_workers(4),
        "det",
        std::slice::from_ref(&kernel),
        launch,
        &cfg,
        run,
    )
    .expect("parallel sweep succeeds");

    assert_eq!(serial.candidates.len(), parallel.candidates.len());
    assert_eq!(serial.best, parallel.best);
    for (s, p) in serial.candidates.iter().zip(&parallel.candidates) {
        assert_eq!(
            (s.n, s.m),
            (p.n, p.m),
            "candidate order must be sweep order"
        );
        assert_eq!(
            s.stats.to_json_fields(),
            p.stats.to_json_fields(),
            "candidate (n={}, m={}) must be byte-identical across worker counts",
            s.n,
            s.m
        );
    }
}

/// A warm (cached) rerun must return exactly what the cold run computed,
/// without invoking the simulation again.
#[test]
fn warm_rerun_equals_cold_run() {
    let kernel = mv_kernel();
    let launch = LaunchConfig::d1(1, 256);
    let cfg = contended_config();
    let engine = Engine::with_workers(2);
    let computed = AtomicUsize::new(0);

    let run = || {
        engine
            .sim_app(
                "warm",
                std::slice::from_ref(&kernel),
                &[launch],
                &cfg,
                || {
                    computed.fetch_add(1, Ordering::SeqCst);
                    simulate(std::slice::from_ref(&kernel), launch, &cfg)
                },
            )
            .expect("sim_app succeeds")
    };
    let cold = run();
    let warm = run();
    assert_eq!(
        computed.load(Ordering::SeqCst),
        1,
        "warm run must not simulate"
    );
    assert_eq!(cold.to_json_fields(), warm.to_json_fields());
    let c = engine.cache_counters();
    assert_eq!((c.hits, c.misses), (1, 1));
}

/// Changing the GPU configuration or the kernel source must change the
/// cache key — a warm entry must never be served for different inputs.
#[test]
fn cache_invalidates_on_config_or_source_change() {
    let kernel = mv_kernel();
    let launch = LaunchConfig::d1(1, 256);
    let cfg = contended_config();
    let key = job_digest("inv", std::slice::from_ref(&kernel), &[launch], &cfg).unwrap();

    let mut bigger = cfg.clone();
    bigger.l1_cap_bytes = Some(64 * 1024);
    let key_cfg = job_digest("inv", std::slice::from_ref(&kernel), &[launch], &bigger).unwrap();
    assert_ne!(key, key_cfg, "GpuConfig change must invalidate");

    let changed = parse_kernel(&format!(
        "#define N {N}
         __global__ void mv(float *A, float *B, float *tmp) {{
             int i = blockIdx.x * blockDim.x + threadIdx.x;
             if (i < N) {{
                 for (int j = 0; j < N; j++) {{
                     tmp[i] += A[i * N + j] * B[j] * 2.0f;
                 }}
             }}
         }}"
    ))
    .unwrap();
    let key_src = job_digest("inv", std::slice::from_ref(&changed), &[launch], &cfg).unwrap();
    assert_ne!(key, key_src, "kernel source change must invalidate");

    // End to end: the engine really recomputes for the changed config.
    let engine = Engine::with_workers(2);
    let computed = AtomicUsize::new(0);
    for c in [&cfg, &bigger] {
        engine
            .sim_app("inv", std::slice::from_ref(&kernel), &[launch], c, || {
                computed.fetch_add(1, Ordering::SeqCst);
                simulate(std::slice::from_ref(&kernel), launch, c)
            })
            .expect("sim_app succeeds");
    }
    assert_eq!(computed.load(Ordering::SeqCst), 2);
    assert_eq!(engine.cache_counters().hits, 0);
}

/// A failing candidate must surface as a `SweepError` naming its
/// `(n, m)` setting — not an opaque joined-thread panic.
#[test]
fn sweep_error_names_the_failing_candidate() {
    let kernel = mv_kernel();
    let launch = LaunchConfig::d1(1, 256);
    let cfg = contended_config();
    let err = sweep_on(
        &Engine::with_workers(2),
        "boom",
        std::slice::from_ref(&kernel),
        launch,
        &cfg,
        |_: &[Kernel], _: &GpuConfig| -> LaunchStats { panic!("validation failed: 3 vs 4") },
    )
    .expect_err("sweep must fail");
    // Candidates are reported in sweep order; the first is (n=1, m=0).
    assert_eq!((err.n, err.m), (1, 0));
    let msg = err.to_string();
    assert!(
        msg.contains("(n=1, m=0)"),
        "error must name the candidate: {msg}"
    );
    assert!(
        msg.contains("validation failed"),
        "error must carry the cause: {msg}"
    );
}

/// The persistent JSONL layer must serve a second engine (a stand-in for
/// a second process) the exact statistics the first one computed.
#[test]
fn persistent_cache_round_trips_across_engines() {
    let dir = std::env::temp_dir().join(format!("catt-simcache-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let kernel = mv_kernel();
    let launch = LaunchConfig::d1(1, 256);
    let cfg = contended_config();
    let computed = AtomicUsize::new(0);
    let run_on = |engine: &Engine| {
        engine
            .sim_app(
                "persist",
                std::slice::from_ref(&kernel),
                &[launch],
                &cfg,
                || {
                    computed.fetch_add(1, Ordering::SeqCst);
                    simulate(std::slice::from_ref(&kernel), launch, &cfg)
                },
            )
            .expect("sim_app succeeds")
    };

    let cold = run_on(&Engine::persistent(&dir));
    assert_eq!(computed.load(Ordering::SeqCst), 1);
    assert!(dir.join("cache.jsonl").is_file(), "JSONL log must exist");

    let second = Engine::persistent(&dir);
    let warm = run_on(&second);
    assert_eq!(
        computed.load(Ordering::SeqCst),
        1,
        "second engine must be served from the JSONL layer"
    );
    assert_eq!(cold.to_json_fields(), warm.to_json_fields());
    assert_eq!(second.cache_counters().hits, 1);

    let _ = std::fs::remove_dir_all(&dir);
}

/// A cancelled single-flight leader must not publish its cancellation to
/// coalesced followers: it retires the slot, a waiting follower
/// re-contends, becomes the new leader, and computes under its own token
/// — no spurious deadline-exceeded for work never attempted on its
/// behalf.
#[test]
fn cancelled_leader_retires_slot_and_follower_recontends() {
    use catt_core::engine::{JobError, SimSource};
    use std::sync::mpsc;
    use std::time::{Duration, Instant};

    let engine = Engine::new();
    let kernel = mv_kernel();
    let launch = LaunchConfig::d1(1, 256);
    let cfg = contended_config();
    let (started_tx, started_rx) = mpsc::channel::<()>();
    let (release_tx, release_rx) = mpsc::channel::<()>();

    std::thread::scope(|scope| {
        // Leader: signals once it is computing, then blocks until the
        // test releases it — and reports itself cancelled (the shape of
        // a deadline/drain token firing mid-simulation).
        let (engine_ref, kernel_ref, cfg_ref) = (&engine, &kernel, &cfg);
        let leader = scope.spawn(move || {
            engine_ref.sim_app_shared(
                "retire",
                std::slice::from_ref(kernel_ref),
                &[launch],
                cfg_ref,
                None,
                move || {
                    started_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                    Err(JobError::fatal("retire", "cancelled by its own deadline")
                        .with_code("cancelled"))
                },
            )
        });
        started_rx.recv().unwrap();
        // Follower: same digest, generous deadline of its own.
        let follower = scope.spawn(|| {
            engine.sim_app_shared(
                "retire",
                std::slice::from_ref(&kernel),
                &[launch],
                &cfg,
                Some(Instant::now() + Duration::from_secs(60)),
                || Ok(simulate(std::slice::from_ref(&kernel), launch, &cfg)),
            )
        });
        // Give the follower a moment to park on the leader's slot, then
        // cancel the leader. (If it has not parked yet it simply finds
        // the retired slot gone and leads directly — same outcome.)
        std::thread::sleep(Duration::from_millis(50));
        release_tx.send(()).unwrap();

        let leader_result = leader.join().unwrap();
        assert_eq!(
            leader_result.unwrap_err().code,
            Some("cancelled"),
            "the leader keeps its own cancellation"
        );
        let follower_result = follower.join().unwrap().expect(
            "the follower must re-contend and compute, not inherit the leader's cancellation",
        );
        assert_eq!(follower_result.source, SimSource::Computed);
        assert!(follower_result.stats.cycles > 0);
    });
}
