//! Randomized tests for CATT's transformations and factor search, drawn
//! from a fixed-seed [`catt_prng::Rng`] so every run sees the same cases.

use catt_core::analysis::{search_factors, ThrottleDecision};
use catt_core::transform::{tb_throttle, warp_throttle};
use catt_frontend::parse_kernel;
use catt_ir::{Kernel, LaunchConfig};
use catt_prng::Rng;
use catt_sim::{Arg, GlobalMem, Gpu, GpuConfig};

/// Eq. 9 post-conditions: a resolved decision actually fits; an
/// unresolved one does not fit even at minimum TLP; and the chosen N is
/// minimal among divisors (no weaker even split also fits).
#[test]
fn search_factors_postconditions() {
    let mut r = Rng::from_tag("search-factors");
    for case in 0..1024 {
        let reqs = r.range_i64(1, 3000) as u64;
        let warps = *r.choose(&[1u32, 2, 4, 6, 8, 16, 32]);
        let tbs = r.range_u32(1, 16);
        let l1d_lines = *r.choose(&[64u64, 256, 896, 1024]);
        let d = search_factors(reqs, warps, tbs, l1d_lines);
        let occupied = |n: u32, m: u32| reqs * (warps / n) as u64 * (tbs - m) as u64;
        if d.resolved {
            assert!(
                occupied(d.n, d.m) <= l1d_lines,
                "case {case}: {d:?} must fit"
            );
            if d == ThrottleDecision::NONE {
                // nothing to check
            } else if d.m == 0 {
                // Minimality of N: the next-smaller divisor overflows.
                for smaller in (1..d.n).rev() {
                    if warps.is_multiple_of(smaller) {
                        assert!(
                            occupied(smaller, 0) > l1d_lines,
                            "case {case}: N={} would already fit, picked {}",
                            smaller,
                            d.n
                        );
                        break;
                    }
                }
            } else {
                // M engaged only after N maxed, and minimally so.
                assert_eq!(d.n, warps, "case {case}");
                assert!(occupied(warps, d.m - 1) > l1d_lines, "case {case}");
            }
        } else {
            assert!(
                reqs > l1d_lines,
                "case {case}: minimum TLP is 1 warp x 1 TB"
            );
        }
    }
}

/// Parameterized matrix-walk kernel used for semantics preservation.
fn make_kernel(n: usize, stride: usize, guard: bool) -> Kernel {
    let guard_open = if guard { "if (i < N) {" } else { "" };
    let guard_close = if guard { "}" } else { "" };
    let src = format!(
        "#define N {n}
         __global__ void k(float *A, float *out) {{
             int i = blockIdx.x * blockDim.x + threadIdx.x;
             {guard_open}
             float acc = 0.0f;
             for (int j = 0; j < 16; j++) {{
                 acc += A[i * {stride} + j] * 0.5f;
             }}
             out[i] = acc + (float)i;
             {guard_close}
         }}"
    );
    parse_kernel(&src).unwrap()
}

/// Warp- and TB-level throttling never change kernel outputs, across
/// factors, strides, block shapes, and guard presence.
#[test]
fn throttling_preserves_semantics() {
    let mut r = Rng::from_tag("throttle-semantics");
    for case in 0..24 {
        let stride = *r.choose(&[1usize, 3, 17, 64]);
        let n_factor = *r.choose(&[2u32, 4, 8]);
        let tb_target = r.range_u32(1, 4);
        let guard = r.bool(0.5);
        let n = 512usize;
        let kernel = make_kernel(n, stride, guard);
        let launch = LaunchConfig::d1(2, 256);
        let config = GpuConfig::titan_v_1sm();
        let run = |k: &Kernel| {
            let mut mem = GlobalMem::new();
            let a = mem.alloc_f32(
                &(0..n * stride + 16)
                    .map(|v| (v % 23) as f32)
                    .collect::<Vec<_>>(),
            );
            let out = mem.alloc_zeroed(n as u32);
            let mut gpu = Gpu::new(config.clone());
            gpu.launch(k, launch, &[Arg::Buf(a), Arg::Buf(out)], &mut mem)
                .unwrap();
            mem.read_f32(out)
        };
        let reference = run(&kernel);

        let wt = warp_throttle(&kernel, 0, n_factor, 8).expect("warp transform");
        assert_eq!(run(&wt), reference, "case {case}: warp N={n_factor}");

        let tt = tb_throttle(&kernel, tb_target, 96 * 1024, 0).expect("tb transform");
        assert_eq!(run(&tt), reference, "case {case}: tb target={tb_target}");

        // Combined, in both orders.
        let both = tb_throttle(&wt, tb_target, 96 * 1024, 0).expect("combined");
        assert_eq!(run(&both), reference, "case {case}: combined");
    }
}

/// The transformed kernel always re-parses from its printed source — CATT
/// is a genuine source-to-source tool. Exhaustive over the old test's
/// sample grid.
#[test]
fn transformed_source_reparses() {
    for n_factor in [2u32, 4, 8] {
        for stride in [1usize, 64] {
            let kernel = make_kernel(256, stride, true);
            let t = warp_throttle(&kernel, 0, n_factor, 8).expect("transform");
            let src = catt_ir::printer::kernel_to_string(&t);
            let reparsed = parse_kernel(&src).expect("reparse");
            assert_eq!(reparsed, t, "N={n_factor} stride={stride}");
        }
    }
}
