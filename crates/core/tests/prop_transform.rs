//! Property tests for CATT's transformations and factor search.

use catt_core::analysis::{search_factors, ThrottleDecision};
use catt_core::transform::{tb_throttle, warp_throttle};
use catt_frontend::parse_kernel;
use catt_ir::{Kernel, LaunchConfig};
use catt_sim::{Arg, GlobalMem, Gpu, GpuConfig};
use proptest::prelude::*;

proptest! {
    /// Eq. 9 post-conditions: a resolved decision actually fits; an
    /// unresolved one does not fit even at minimum TLP; and the chosen N
    /// is minimal among divisors (no weaker even split also fits).
    #[test]
    fn search_factors_postconditions(
        reqs in 1u64..3000,
        warps in prop::sample::select(vec![1u32, 2, 4, 6, 8, 16, 32]),
        tbs in 1u32..16,
        l1d_lines in prop::sample::select(vec![64u64, 256, 896, 1024]),
    ) {
        let d = search_factors(reqs, warps, tbs, l1d_lines);
        let occupied = |n: u32, m: u32| reqs * (warps / n) as u64 * (tbs - m) as u64;
        if d.resolved {
            prop_assert!(occupied(d.n, d.m) <= l1d_lines, "{d:?} must fit");
            if d == ThrottleDecision::NONE {
                // nothing to check
            } else if d.m == 0 {
                // Minimality of N: the next-smaller divisor overflows.
                for smaller in (1..d.n).rev() {
                    if warps % smaller == 0 {
                        prop_assert!(
                            occupied(smaller, 0) > l1d_lines,
                            "N={} would already fit, picked {}", smaller, d.n
                        );
                        break;
                    }
                }
            } else {
                // M engaged only after N maxed, and minimally so.
                prop_assert_eq!(d.n, warps);
                prop_assert!(occupied(warps, d.m - 1) > l1d_lines);
            }
        } else {
            prop_assert!(reqs > l1d_lines, "minimum TLP is 1 warp x 1 TB");
        }
    }
}

/// Parameterized matrix-walk kernel used for semantics preservation.
fn make_kernel(n: usize, stride: usize, guard: bool) -> Kernel {
    let guard_open = if guard { "if (i < N) {" } else { "" };
    let guard_close = if guard { "}" } else { "" };
    let src = format!(
        "#define N {n}
         __global__ void k(float *A, float *out) {{
             int i = blockIdx.x * blockDim.x + threadIdx.x;
             {guard_open}
             float acc = 0.0f;
             for (int j = 0; j < 16; j++) {{
                 acc += A[i * {stride} + j] * 0.5f;
             }}
             out[i] = acc + (float)i;
             {guard_close}
         }}"
    );
    parse_kernel(&src).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Warp- and TB-level throttling never change kernel outputs, across
    /// factors, strides, block shapes, and guard presence.
    #[test]
    fn throttling_preserves_semantics(
        stride in prop::sample::select(vec![1usize, 3, 17, 64]),
        n_factor in prop::sample::select(vec![2u32, 4, 8]),
        tb_target in 1u32..4,
        guard in any::<bool>(),
    ) {
        let n = 512usize;
        let kernel = make_kernel(n, stride, guard);
        let launch = LaunchConfig::d1(2, 256);
        let config = GpuConfig::titan_v_1sm();
        let run = |k: &Kernel| {
            let mut mem = GlobalMem::new();
            let a = mem.alloc_f32(
                &(0..n * stride + 16).map(|v| (v % 23) as f32).collect::<Vec<_>>(),
            );
            let out = mem.alloc_zeroed(n as u32);
            let mut gpu = Gpu::new(config.clone());
            gpu.launch(k, launch, &[Arg::Buf(a), Arg::Buf(out)], &mut mem).unwrap();
            mem.read_f32(out)
        };
        let reference = run(&kernel);

        let wt = warp_throttle(&kernel, 0, n_factor, 8).expect("warp transform");
        prop_assert_eq!(run(&wt), reference.clone(), "warp N={}", n_factor);

        let tt = tb_throttle(&kernel, tb_target, 96 * 1024, 0).expect("tb transform");
        prop_assert_eq!(run(&tt), reference.clone(), "tb target={}", tb_target);

        // Combined, in both orders.
        let both = tb_throttle(&wt, tb_target, 96 * 1024, 0).expect("combined");
        prop_assert_eq!(run(&both), reference, "combined");
    }

    /// The transformed kernel always re-parses from its printed source —
    /// CATT is a genuine source-to-source tool.
    #[test]
    fn transformed_source_reparses(
        n_factor in prop::sample::select(vec![2u32, 4, 8]),
        stride in prop::sample::select(vec![1usize, 64]),
    ) {
        let kernel = make_kernel(256, stride, true);
        let t = warp_throttle(&kernel, 0, n_factor, 8).expect("transform");
        let src = catt_ir::printer::kernel_to_string(&t);
        let reparsed = parse_kernel(&src).expect("reparse");
        prop_assert_eq!(reparsed, t);
    }
}
