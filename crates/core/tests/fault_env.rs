//! Environment-driven fault-injection pass, run by `scripts/check.sh`
//! (and CI) as:
//!
//! ```sh
//! CATT_FAULT_PLAN="panic-job=2,corrupt-cache" \
//!     cargo test -p catt-core --test fault_env
//! ```
//!
//! Unlike `faults.rs` (programmatic plans), this binary exercises the
//! real `CATT_FAULT_PLAN` wiring end to end: the engine constructors
//! read the plan from the environment themselves. When the variable is
//! unset the test degenerates to a plain healthy sweep, so it is safe
//! under a bare `cargo test`.

use catt_core::bftt::sweep_on;
use catt_core::engine::Engine;
use catt_core::fault::FaultPlan;
use catt_frontend::parse_kernel;
use catt_ir::kernel::{Kernel, LaunchConfig};
use catt_sim::{Arg, GlobalMem, Gpu, GpuConfig, LaunchStats};

const N: usize = 256;

fn mv_kernel() -> Kernel {
    let src = format!(
        "#define N {N}
         __global__ void mv(float *A, float *B, float *tmp) {{
             int i = blockIdx.x * blockDim.x + threadIdx.x;
             if (i < N) {{
                 for (int j = 0; j < N; j++) {{
                     tmp[i] += A[i * N + j] * B[j];
                 }}
             }}
         }}"
    );
    parse_kernel(&src).unwrap()
}

fn simulate(kernels: &[Kernel], launch: LaunchConfig, cfg: &GpuConfig) -> LaunchStats {
    let mut mem = GlobalMem::new();
    let a = mem.alloc_f32(&vec![1.0; N * N]);
    let b = mem.alloc_f32(&vec![1.0; N]);
    let tmp = mem.alloc_zeroed(N as u32);
    let mut gpu = Gpu::new(cfg.clone());
    gpu.launch(
        &kernels[0],
        launch,
        &[Arg::Buf(a), Arg::Buf(b), Arg::Buf(tmp)],
        &mut mem,
    )
    .unwrap()
}

#[test]
fn sweep_completes_under_the_env_fault_plan() {
    let plan = FaultPlan::from_env();
    let kernel = mv_kernel();
    let launch = LaunchConfig::d1(1, 256);
    let mut cfg = GpuConfig::titan_v_1sm();
    cfg.l1_cap_bytes = Some(32 * 1024);

    let dir = std::env::temp_dir().join(format!("catt-faultenv-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // `Engine::persistent` reads CATT_FAULT_PLAN itself — the point of
    // this test. One worker keeps the lifetime job counter aligned with
    // the sweep grid, so `panic-job=N` (N > 0) hits a non-baseline
    // candidate deterministically.
    let run_sweep = || {
        let engine = Engine::persistent(&dir);
        assert_eq!(engine.fault_plan(), &plan, "engine must read the env plan");
        if plan.panic_at_job.is_some() {
            assert_eq!(
                engine.workers(),
                1,
                "drivers must pin CATT_ENGINE_WORKERS=1 with panic-job=N \
                 so the job counter aligns with the sweep grid"
            );
        }
        sweep_on(
            &engine,
            "fault-env",
            std::slice::from_ref(&kernel),
            launch,
            &cfg,
            |kernels: &[Kernel], c: &GpuConfig| simulate(kernels, launch, c),
        )
        .expect("sweep completes under the fault plan")
    };

    let result = run_sweep();
    let expected_faults = usize::from(plan.panic_at_job.is_some());
    assert_eq!(result.faulted().len(), expected_faults);
    assert_eq!((result.baseline().n, result.baseline().m), (1, 0));
    assert!(result.best_speedup() >= 1.0);

    // Second pass over the same cache directory: if `corrupt-cache` was
    // armed, exactly one line must be skipped (and repaired); the sweep
    // must still complete warm.
    let second = Engine::persistent(&dir);
    if plan.corrupt_cache {
        assert_eq!(
            second.cache_counters().skipped,
            1,
            "one corrupt line skipped"
        );
    } else {
        assert_eq!(second.cache_counters().skipped, 0);
    }
    let rerun = run_sweep();
    assert_eq!(
        (rerun.best_candidate().n, rerun.best_candidate().m),
        (result.best_candidate().n, result.best_candidate().m),
        "warm sweep agrees with the cold one"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
