//! The active-engine-workers hint must never leak (ISSUE: RAII guard in
//! `Engine::run_jobs`): the count divides `available_parallelism` into
//! every later launch's SM thread budget, so a batch that exits early —
//! including via an unwinding (panicking) job — must restore it exactly.
//!
//! This file is its own test process on purpose: these assertions claim
//! sole ownership of the process-wide counter, which the unit tests
//! inside `catt-sim` could not do concurrently.

use catt_core::{Engine, JobError, Progress};
use catt_sim::engine_workers_hint;

/// A batch containing a panicking job restores the hint to its idle
/// value: the panic unwinds through the job closure, is surfaced as a
/// `JobError`, and the guard still deregisters the batch's workers.
#[test]
fn worker_hint_restores_across_an_unwinding_job() {
    assert_eq!(engine_workers_hint(), 1, "idle process counts as 1");
    let engine = Engine::with_workers(3).with_progress(Progress::Off);
    let jobs: Vec<u32> = (0..8).collect();
    let results = engine.run_jobs("unwind-test", &jobs, |_, &j| {
        if j == 5 {
            panic!("job 5 unwinds");
        }
        Ok::<u32, JobError>(j * 2)
    });
    assert_eq!(results.len(), 8);
    assert!(results[5].is_err(), "the panicking job surfaces as Err");
    assert_eq!(results[0], Ok(0));
    assert_eq!(results[7], Ok(14));
    assert_eq!(
        engine_workers_hint(),
        1,
        "run_jobs leaked its worker registration"
    );
    // A second batch starts from the correct baseline (a leak would have
    // compounded here, shrinking every later SM thread budget).
    let results = engine.run_jobs("follow-up", &jobs, |_, &j| Ok::<u32, JobError>(j));
    assert!(results.iter().all(|r| r.is_ok()));
    assert_eq!(engine_workers_hint(), 1);
}
