//! L1D / shared-memory configuration (paper §4.1).
//!
//! Volta carves one 128 KB on-chip memory into shared memory and L1D. The
//! compiler first computes the maximum TLP the kernel can sustain
//! (Eq. 1–3, with the largest carve-out available to Eq. 1), then selects
//! the *smallest* carve-out that covers the shared memory all those
//! resident blocks demand (Eq. 4) — maximizing the L1D without giving up
//! any thread-level parallelism.

use catt_sim::{max_resident_tbs, GpuConfig, OccupancyLimits, SMEM_CONFIGS_KB};

/// The chosen on-chip memory split for a kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct L1SmemPlan {
    /// Configuration with the carve-out applied.
    pub config: GpuConfig,
    /// Shared-memory carve-out selected, bytes.
    pub smem_carveout_bytes: u32,
    /// Resulting L1D capacity, bytes.
    pub l1d_bytes: u32,
    /// Concurrent thread blocks per SM under this plan (Eq. 3).
    pub resident_tbs: u32,
    /// Per-limiter breakdown (computed at the chosen carve-out).
    pub limits: OccupancyLimits,
}

/// Choose the carve-out for a kernel using `smem_per_tb` bytes of shared
/// memory, `regs_per_thread` registers and `threads_per_tb` threads per
/// block (paper §4.1, Eq. 1–4).
///
/// Returns `None` if even the largest carve-out cannot hold one block.
pub fn plan_l1_smem(
    base: &GpuConfig,
    smem_per_tb: u32,
    regs_per_thread: u32,
    threads_per_tb: u32,
) -> Option<L1SmemPlan> {
    // Step 1: maximum TLP, letting shared memory use the largest
    // carve-out (Eq. 1 with SIZE_shm_SM = 96 KB).
    let max_kb = *SMEM_CONFIGS_KB.last().expect("non-empty carve-out table");
    let mut max_cfg = base.clone();
    max_cfg.smem_carveout_bytes = max_kb * 1024;
    let max_limits = max_resident_tbs(&max_cfg, smem_per_tb, regs_per_thread, threads_per_tb);
    let resident = max_limits.resident_tbs();
    if resident == 0 {
        return None;
    }

    // Step 2 (Eq. 4): shared memory demanded by all resident blocks, and
    // the smallest carve-out covering it.
    let use_shm_sm = smem_per_tb * resident;
    let kb = SMEM_CONFIGS_KB
        .iter()
        .copied()
        .find(|kb| kb * 1024 >= use_shm_sm)?;
    let mut config = base.clone();
    config.smem_carveout_bytes = kb * 1024;
    let limits = max_resident_tbs(&config, smem_per_tb, regs_per_thread, threads_per_tb);
    debug_assert_eq!(
        limits.resident_tbs(),
        resident,
        "carve-out choice must not cost TLP"
    );
    Some(L1SmemPlan {
        l1d_bytes: config.l1d_bytes(),
        smem_carveout_bytes: kb * 1024,
        resident_tbs: limits.resident_tbs(),
        limits,
        config,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_smem_gets_max_l1d() {
        let plan = plan_l1_smem(&GpuConfig::titan_v(), 0, 32, 256).unwrap();
        assert_eq!(plan.smem_carveout_bytes, 0);
        assert_eq!(plan.l1d_bytes, 128 * 1024);
        assert_eq!(plan.resident_tbs, 8); // 64 warps / 8 per block
    }

    /// Paper Table 2: PF uses 4 KB of shared memory per block. With 512
    /// threads per block (16 warps), 4 blocks fit → 16 KB demand.
    #[test]
    fn pf_like_kernel_gets_16kb_carveout() {
        let plan = plan_l1_smem(&GpuConfig::titan_v(), 4 * 1024, 32, 512).unwrap();
        assert_eq!(plan.resident_tbs, 4);
        assert_eq!(plan.smem_carveout_bytes, 16 * 1024);
        assert_eq!(plan.l1d_bytes, 112 * 1024);
    }

    #[test]
    fn tlp_is_never_sacrificed_for_l1d() {
        // 8 KB per block, 2-warp blocks: warp limit allows 32, HW allows
        // 32, shared memory allows 96/8 = 12 → 12 blocks, 96 KB carve-out.
        let plan = plan_l1_smem(&GpuConfig::titan_v(), 8 * 1024, 32, 64).unwrap();
        assert_eq!(plan.resident_tbs, 12);
        assert_eq!(plan.smem_carveout_bytes, 96 * 1024);
        assert_eq!(plan.l1d_bytes, 32 * 1024);
    }

    #[test]
    fn huge_smem_kernel_single_block() {
        // 40 KB per block → 2 blocks fit in 96 KB; demand 80 KB → 96 KB
        // carve-out.
        let plan = plan_l1_smem(&GpuConfig::titan_v(), 40 * 1024, 32, 256).unwrap();
        assert_eq!(plan.resident_tbs, 2);
        assert_eq!(plan.smem_carveout_bytes, 96 * 1024);
    }

    #[test]
    fn impossible_smem_returns_none() {
        assert!(plan_l1_smem(&GpuConfig::titan_v(), 97 * 1024, 32, 256).is_none());
    }

    #[test]
    fn register_limited_kernel() {
        // 128 regs/thread × 512 threads = 64 K regs → 1 block per SM.
        let plan = plan_l1_smem(&GpuConfig::titan_v(), 1024, 128, 512).unwrap();
        assert_eq!(plan.resident_tbs, 1);
        assert_eq!(plan.smem_carveout_bytes, 8 * 1024);
    }
}
