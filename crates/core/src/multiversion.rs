//! Kernel multi-versioning (paper §4.3, last paragraph): "for
//! applications whose kernel function parameters (i.e., grid size, thread
//! block size, shared memory size) are unknown at compile time, the
//! modified kernel function is duplicated with different thread
//! throttling factors. The kernel function is then selectively invoked
//! according to the dynamically determined values."
//!
//! [`Pipeline::compile_multi`] compiles one throttled variant per
//! candidate launch configuration (deduplicating identical code), renames
//! the duplicates so they can coexist in one translation unit, and
//! [`MultiVersioned::select`] is the runtime dispatch that the host-side
//! launcher performs.

use crate::pipeline::{CompiledKernel, Pipeline, PipelineError};
use catt_ir::kernel::{Kernel, LaunchConfig};
use catt_ir::printer;

/// One compiled variant with the launch configurations it serves.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Launches this variant was compiled for (several launches often
    /// yield the same throttled code and share a variant).
    pub launches: Vec<LaunchConfig>,
    /// The compiled kernel; its name carries a `__catt_v<i>` suffix when
    /// more than one distinct variant exists.
    pub compiled: CompiledKernel,
}

/// A multi-versioned kernel: variants plus the runtime dispatch table.
#[derive(Debug, Clone)]
pub struct MultiVersioned {
    /// Original kernel name.
    pub name: String,
    /// Distinct variants, in candidate order.
    pub variants: Vec<Variant>,
}

impl MultiVersioned {
    /// Runtime dispatch: the variant compiled for `launch`. Falls back to
    /// a variant with the same *block* geometry (throttling factors
    /// depend on the block, not the grid, except through the resident-TB
    /// clamp), and `None` if nothing matches.
    pub fn select(&self, launch: LaunchConfig) -> Option<&CompiledKernel> {
        if let Some(v) = self.variants.iter().find(|v| v.launches.contains(&launch)) {
            return Some(&v.compiled);
        }
        self.variants
            .iter()
            .find(|v| v.launches.iter().any(|l| l.block == launch.block))
            .map(|v| &v.compiled)
    }

    /// Diagnostics of variants whose transform failed and fell back to
    /// the original code: `(variant index, diagnostic)` pairs, empty when
    /// every variant compiled cleanly. The fallback variants are still
    /// dispatchable — correct, merely unthrottled.
    pub fn fallback_diagnostics(&self) -> Vec<(usize, &catt_diag::Diagnostic)> {
        self.variants
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.compiled.fallback_diagnostic.as_ref().map(|d| (i, d)))
            .collect()
    }

    /// Emit all variants as one translation unit (what the source-to-
    /// source compiler writes out next to the dispatch code).
    pub fn emitted_source(&self) -> String {
        let mut out = String::new();
        for v in &self.variants {
            out.push_str(&printer::kernel_to_string(&v.compiled.transformed));
            out.push('\n');
        }
        out
    }
}

impl Pipeline {
    /// Compile `kernel` for every candidate launch configuration,
    /// deduplicating variants whose throttled code is identical (§4.3).
    pub fn compile_multi(
        &self,
        kernel: &Kernel,
        candidates: &[LaunchConfig],
    ) -> Result<MultiVersioned, PipelineError> {
        if candidates.is_empty() {
            return Err(PipelineError::from_diags(vec![
                catt_diag::Diagnostic::error(
                    catt_diag::codes::MISSING_LAUNCH,
                    format!("`{}`: no candidate launch configurations", kernel.name),
                )
                .with_span(kernel.spans.name),
            ]));
        }
        let mut variants: Vec<Variant> = Vec::new();
        for &launch in candidates {
            let compiled = self.compile_kernel(kernel, launch)?;
            match variants
                .iter_mut()
                .find(|v| v.compiled.transformed == compiled.transformed)
            {
                Some(v) => v.launches.push(launch),
                None => variants.push(Variant {
                    launches: vec![launch],
                    compiled,
                }),
            }
        }
        // Rename duplicates so they can coexist in one translation unit.
        if variants.len() > 1 {
            for (i, v) in variants.iter_mut().enumerate() {
                let name = format!("{}__catt_v{}", kernel.name, i);
                v.compiled.transformed.name = name;
                v.compiled.emitted_source = printer::kernel_to_string(&v.compiled.transformed);
            }
        }
        Ok(MultiVersioned {
            name: kernel.name.clone(),
            variants,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catt_frontend::parse_kernel;
    use catt_sim::GpuConfig;

    fn divergent_kernel() -> Kernel {
        parse_kernel(
            "#define N 4096
             __global__ void walk(float *A, float *tmp) {
                 int i = blockIdx.x * blockDim.x + threadIdx.x;
                 if (i < N) {
                     for (int j = 0; j < 256; j++) {
                         tmp[i] += A[i * 256 + j];
                     }
                 }
             }",
        )
        .unwrap()
    }

    #[test]
    fn variants_differ_across_launch_shapes() {
        let pipe = Pipeline::new(GpuConfig::titan_v_1sm());
        let candidates = [
            LaunchConfig::d1(1, 256),  // 1 TB: light contention
            LaunchConfig::d1(8, 256),  // 8 TBs: heavy contention
            LaunchConfig::d1(16, 256), // saturated: same residency as 8
        ];
        let mv = pipe
            .compile_multi(&divergent_kernel(), &candidates)
            .unwrap();
        assert!(
            mv.variants.len() >= 2,
            "different launches must yield different throttling: {} variant(s)",
            mv.variants.len()
        );
        // Dispatch returns the variant compiled for each candidate.
        for &l in &candidates {
            let c = mv.select(l).expect("dispatch");
            assert!(c.emitted_source.starts_with("__global__"));
        }
        // Unknown grid with a known block shape falls back by block.
        let fallback = mv.select(LaunchConfig::d1(999, 256));
        assert!(fallback.is_some());
        // Totally unknown block: no match.
        assert!(mv.select(LaunchConfig::d1(4, 64)).is_none());
    }

    #[test]
    fn identical_variants_are_deduplicated_and_unrenamed() {
        let pipe = Pipeline::new(GpuConfig::titan_v_1sm());
        // Same residency either way → identical code → one variant.
        let candidates = [LaunchConfig::d1(8, 256), LaunchConfig::d1(16, 256)];
        let mv = pipe
            .compile_multi(&divergent_kernel(), &candidates)
            .unwrap();
        if mv.variants.len() == 1 {
            assert_eq!(mv.variants[0].launches.len(), 2);
            assert_eq!(mv.variants[0].compiled.transformed.name, "walk");
        }
    }

    #[test]
    fn emitted_unit_contains_all_variants_and_parses() {
        let pipe = Pipeline::new(GpuConfig::titan_v_1sm());
        let candidates = [LaunchConfig::d1(1, 256), LaunchConfig::d1(8, 256)];
        let mv = pipe
            .compile_multi(&divergent_kernel(), &candidates)
            .unwrap();
        let unit = mv.emitted_source();
        let module = catt_frontend::parse_module(&unit).unwrap();
        assert_eq!(module.kernels.len(), mv.variants.len());
        if mv.variants.len() > 1 {
            assert!(unit.contains("__catt_v0"));
            assert!(unit.contains("__catt_v1"));
        }
    }

    #[test]
    fn empty_candidates_is_an_error() {
        let pipe = Pipeline::new(GpuConfig::titan_v_1sm());
        assert!(pipe.compile_multi(&divergent_kernel(), &[]).is_err());
    }
}
