//! End-to-end CATT driver: the staged pass pipeline
//! `parse → analyze → legalize → transform → emit`.
//!
//! Each stage is a [`crate::passes::Pass`] run by a
//! [`crate::passes::PassManager`]: panics are contained (an escaped
//! panic becomes an `E030` diagnostic naming the pass), and the parse
//! and analyze stages are memoized content-addressed so a repeat
//! compile of a hot source skips straight to the transform.

use crate::analysis::KernelAnalysis;
use crate::fault::FaultPlan;
use crate::passes::{
    legalize, AnalyzePass, EmitPass, LegalizePass, ParsePass, PassManager, TransformPass,
};
use catt_diag::{codes, Diagnostic, Severity};
use catt_ir::kernel::{Kernel, LaunchConfig};
use catt_sim::GpuConfig;
use std::fmt;

/// Pipeline failure: one or more error diagnostics (parse errors,
/// lowering failures, an unlaunchable kernel, a panicked pass).
///
/// `message` mirrors the first error's message for quick formatting;
/// `diagnostics` carries every typed diagnostic (errors *and* the
/// warnings that accompanied them) with codes and source spans.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineError {
    pub message: String,
    pub diagnostics: Vec<Diagnostic>,
}

impl PipelineError {
    /// Build from a diagnostic list; guarantees at least one error
    /// diagnostic is present (every pipeline `Err` must explain itself).
    pub fn from_diags(mut diagnostics: Vec<Diagnostic>) -> PipelineError {
        if !diagnostics.iter().any(|d| d.severity == Severity::Error) {
            diagnostics.push(Diagnostic::error(
                codes::PASS_PANICKED,
                "internal error: pipeline failed without reporting an error",
            ));
        }
        let message = diagnostics
            .iter()
            .find(|d| d.severity == Severity::Error)
            .map(|d| d.message.clone())
            .unwrap_or_default();
        PipelineError {
            message,
            diagnostics,
        }
    }

    /// The error-severity diagnostics (skips riding-along warnings).
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CATT pipeline: {}", self.message)?;
        let extra = self.errors().count().saturating_sub(1);
        if extra > 0 {
            write!(
                f,
                " (and {extra} more error{})",
                if extra == 1 { "" } else { "s" }
            )?;
        }
        Ok(())
    }
}

impl std::error::Error for PipelineError {}

/// One compiled (analyzed + transformed) kernel.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// Kernel as parsed.
    pub original: Kernel,
    /// Kernel with CATT's throttling code inserted (identical to
    /// `original` when nothing needed throttling).
    pub transformed: Kernel,
    /// Launch configuration the analysis assumed.
    pub launch: LaunchConfig,
    /// Full analysis record (Table 3 data).
    pub analysis: KernelAnalysis,
    /// Re-emitted CUDA source of the transformed kernel.
    pub emitted_source: String,
    /// Why the throttling transform was abandoned, when it was: the
    /// kernel fell back to its original code (`transformed == original`)
    /// and this records the typed diagnostic (`W001` transform fallback,
    /// `W002` injected fault). `None` on a clean compile.
    pub fallback_diagnostic: Option<Diagnostic>,
    /// Warnings from the compile — chiefly legality rejections (`W010`
    /// barrier, `W011` divergent guard, `W012` unresolvable footprint),
    /// each naming the offending loop's source span.
    pub warnings: Vec<Diagnostic>,
}

impl CompiledKernel {
    /// Whether CATT changed this kernel.
    pub fn is_transformed(&self) -> bool {
        self.original != self.transformed
    }

    /// Whether the transform failed and the original code is being used.
    pub fn is_fallback(&self) -> bool {
        self.fallback_diagnostic.is_some()
    }
}

/// A compiled application: all kernels of a translation unit.
#[derive(Debug, Clone)]
pub struct CompiledApp {
    pub kernels: Vec<CompiledKernel>,
}

impl CompiledApp {
    /// The transformed kernels, in order (convenience for runners).
    pub fn transformed_kernels(&self) -> Vec<Kernel> {
        self.kernels.iter().map(|k| k.transformed.clone()).collect()
    }

    /// The original kernels, in order.
    pub fn original_kernels(&self) -> Vec<Kernel> {
        self.kernels.iter().map(|k| k.original.clone()).collect()
    }
}

/// The CATT compiler pipeline, parameterized by the target GPU.
#[derive(Debug, Clone)]
pub struct Pipeline {
    base_config: GpuConfig,
    /// Armed fault injections (`fail-transform` forces the fallback path).
    fault: FaultPlan,
    /// Runs the passes: panic containment + content-addressed memoization.
    manager: PassManager,
}

impl Pipeline {
    /// A pipeline targeting `config` (e.g. [`GpuConfig::titan_v`]).
    /// Honors the `CATT_FAULT_PLAN` and `CATT_PASS_CACHE` environment
    /// variables.
    pub fn new(base_config: GpuConfig) -> Pipeline {
        Pipeline {
            base_config,
            fault: FaultPlan::from_env(),
            manager: PassManager::from_env(),
        }
    }

    /// Replace the fault plan (builder-style, for fault-injection tests).
    pub fn with_fault_plan(mut self, fault: FaultPlan) -> Pipeline {
        self.fault = fault;
        self
    }

    /// Force the pass cache on or off regardless of the environment
    /// (builder-style, for tests and benchmarks).
    pub fn with_pass_cache(mut self, enabled: bool) -> Pipeline {
        self.manager = PassManager::with_cache(enabled);
        self
    }

    /// The target configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.base_config
    }

    /// Compile a whole translation unit. `launches` pairs each kernel name
    /// with the launch configuration the host uses (the compile-time-known
    /// launch parameters of §4.3).
    pub fn compile_source(
        &self,
        src: &str,
        launches: &[(&str, LaunchConfig)],
    ) -> Result<CompiledApp, PipelineError> {
        let mut diags: Vec<Diagnostic> = Vec::new();
        let Some(module) = self.manager.run(&ParsePass, src, &mut diags) else {
            catt_diag::locate(&mut diags, src);
            return Err(PipelineError::from_diags(diags));
        };
        let mut kernels = Vec::new();
        for k in &module.kernels {
            let Some(launch) = launches.iter().find(|(n, _)| *n == k.name).map(|(_, l)| *l) else {
                diags.push(
                    Diagnostic::error(
                        codes::MISSING_LAUNCH,
                        format!("no launch configuration for kernel `{}`", k.name),
                    )
                    .with_span(k.spans.name),
                );
                catt_diag::locate(&mut diags, src);
                return Err(PipelineError::from_diags(diags));
            };
            match self.compile_kernel(k, launch) {
                Ok(mut compiled) => {
                    catt_diag::locate(&mut compiled.warnings, src);
                    if let Some(fb) = &mut compiled.fallback_diagnostic {
                        let mut one = vec![fb.clone()];
                        catt_diag::locate(&mut one, src);
                        *fb = one.pop().unwrap_or_else(|| fb.clone());
                    }
                    kernels.push(compiled);
                }
                Err(mut e) => {
                    catt_diag::locate(&mut e.diagnostics, src);
                    return Err(e);
                }
            }
        }
        Ok(CompiledApp { kernels })
    }

    /// Compile one kernel through the staged passes.
    pub fn compile_kernel(
        &self,
        kernel: &Kernel,
        launch: LaunchConfig,
    ) -> Result<CompiledKernel, PipelineError> {
        let mut diags: Vec<Diagnostic> = Vec::new();

        let analyze = AnalyzePass {
            config: self.base_config.clone(),
            launch,
        };
        let Some(analysis) = self.manager.run(&analyze, kernel, &mut diags) else {
            return Err(PipelineError::from_diags(diags));
        };

        let legal_input = (kernel.clone(), analysis.clone());
        let Some(plan) = self.manager.run(&LegalizePass, &legal_input, &mut diags) else {
            return Err(PipelineError::from_diags(diags));
        };

        let transform = TransformPass {
            fault: self.fault.clone(),
        };
        let tr_input = (kernel.clone(), analysis.clone(), plan);
        let Some(outcome) = self.manager.run(&transform, &tr_input, &mut diags) else {
            return Err(PipelineError::from_diags(diags));
        };

        let Some(emitted_source) = self.manager.run(&EmitPass, &outcome.kernel, &mut diags) else {
            return Err(PipelineError::from_diags(diags));
        };

        // Anything error-severity at this point means a pass panicked
        // mid-flight even though a later stage produced output — fail
        // loudly rather than ship a suspect kernel.
        if diags.iter().any(|d| d.severity == Severity::Error) {
            return Err(PipelineError::from_diags(diags));
        }

        Ok(CompiledKernel {
            original: kernel.clone(),
            transformed: outcome.kernel,
            launch,
            analysis,
            emitted_source,
            fallback_diagnostic: outcome.fallback,
            warnings: diags,
        })
    }
}

/// Apply the analysis decisions to a kernel: per-loop warp throttling for
/// every outermost resolved loop (descendants of a throttled loop are
/// skipped — splitting nested loops would interleave barrier sites), then
/// one kernel-wide TB throttle for the largest `M`.
///
/// This is the legalize + apply steps fused, without diagnostics — the
/// convenience entry point for callers that already hold an analysis.
pub fn apply_decisions(kernel: &Kernel, analysis: &KernelAnalysis) -> Kernel {
    let mut diags = Vec::new();
    let plan = legalize(kernel, analysis, &mut diags);
    crate::passes::apply_plan(kernel, analysis, &plan)
}

/// Apply a *uniform* `(n, m)` throttling to a kernel — the BFTT baseline's
/// transform: the same warp factor on every eligible outermost loop and
/// one TB reduction, regardless of per-loop analysis.
pub fn apply_uniform(
    kernel: &Kernel,
    n: u32,
    m: u32,
    warps_per_tb: u32,
    resident_tbs: u32,
    carveout_bytes: u32,
) -> Kernel {
    use crate::transform::{tb_throttle, warp_throttle};
    let mut out = kernel.clone();
    if n > 1 {
        // The block shape is implied by `warps_per_tb`; it feeds the
        // block-uniformity proof for guards over the linear thread id.
        let block = (warps_per_tb * crate::analysis::WARP_SIZE, 1, 1);
        let mut loops = crate::transform::eligible_loops_for(kernel, block, None);
        loops.sort_by(|a, b| b.cmp(a));
        for id in loops {
            if let Some(t) = warp_throttle(&out, id, n, warps_per_tb) {
                out = t;
            }
        }
    }
    if m > 0 && m < resident_tbs {
        let carveout = if carveout_bytes == 0 {
            // Reconfigure like Fig. 5 when no shared space exists.
            96 * 1024
        } else {
            carveout_bytes
        };
        if let Some(t) = tb_throttle(&out, resident_tbs - m, carveout, kernel.shared_mem_bytes()) {
            out = t;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use catt_ir::printer;

    const ATAX_SRC: &str = "
        #define NX 4096
        __global__ void atax1(float *A, float *B, float *tmp) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < NX) {
                for (int j = 0; j < NX; j++) {
                    tmp[i] += A[i * NX + j] * B[j];
                }
            }
        }
        __global__ void atax2(float *A, float *tmp, float *y) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < NX) {
                for (int j = 0; j < NX; j++) {
                    y[i] += A[j * NX + i] * tmp[j];
                }
            }
        }";

    #[test]
    fn compiles_atax_throttling_only_kernel1() {
        let pipe = Pipeline::new(GpuConfig::titan_v());
        let launch = LaunchConfig::d1(640, 256);
        let app = pipe
            .compile_source(ATAX_SRC, &[("atax1", launch), ("atax2", launch)])
            .unwrap();
        assert_eq!(app.kernels.len(), 2);
        let k1 = &app.kernels[0];
        let k2 = &app.kernels[1];
        assert!(k1.is_transformed(), "kernel 1 has the divergent loop");
        assert!(
            !k2.is_transformed(),
            "kernel 2 is coalesced and must be untouched (the CATT-vs-BFTT case)"
        );
        assert!(k1.emitted_source.contains("__syncthreads();"));
        // The emitted source re-parses.
        assert!(catt_frontend::parse_kernel(&k1.emitted_source).is_ok());
    }

    #[test]
    fn missing_launch_is_an_error() {
        let pipe = Pipeline::new(GpuConfig::titan_v());
        let err = pipe
            .compile_source(ATAX_SRC, &[("atax1", LaunchConfig::d1(640, 256))])
            .unwrap_err();
        assert!(err.message.contains("atax2"));
        let first = err.errors().next().expect("a typed diagnostic");
        assert_eq!(first.code, codes::MISSING_LAUNCH);
        assert!(first.span.is_some(), "points at the kernel name");
        assert!(first.line > 0, "line/col located against the source");
    }

    #[test]
    fn parse_errors_carry_spanned_diagnostics() {
        let pipe = Pipeline::new(GpuConfig::titan_v());
        let err = pipe
            .compile_source(
                "__global__ void k(float *A) { A[0] = ; }",
                &[("k", LaunchConfig::d1(1, 64))],
            )
            .unwrap_err();
        assert!(!err.diagnostics.is_empty());
        for d in err.errors() {
            assert!(
                d.span.is_some(),
                "{}: parse errors carry spans",
                d.headline()
            );
        }
    }

    #[test]
    fn uniform_transform_throttles_every_eligible_loop() {
        let k = catt_frontend::parse_kernel(ATAX_SRC).unwrap();
        let t = apply_uniform(&k, 2, 0, 8, 8, 0);
        let src = printer::kernel_to_string(&t);
        assert_eq!(src.matches("__syncthreads();").count(), 2);
        // n=1, m=0 is the identity.
        let id = apply_uniform(&k, 1, 0, 8, 8, 0);
        assert_eq!(id, k);
    }

    #[test]
    fn uniform_tb_throttle_reconfigures_carveout() {
        let k = catt_frontend::parse_kernel(ATAX_SRC).unwrap();
        let t = apply_uniform(&k, 1, 6, 8, 8, 0);
        // 8-6=2 TBs on the reconfigured 96 KB carve-out → 48 KB dummy.
        assert_eq!(t.shared_mem_bytes(), 48 * 1024);
    }

    #[test]
    fn tb_decision_triggers_carveout_reconfiguration() {
        // Force TB throttling by shrinking the L1D cap so even one warp
        // group overflows at full TB count.
        let mut cfg = GpuConfig::titan_v();
        cfg.l1_cap_bytes = Some(8 * 1024); // 64 lines
        let pipe = Pipeline::new(cfg);
        let app = pipe
            .compile_source(
                ATAX_SRC,
                &[
                    ("atax1", LaunchConfig::d1(640, 256)),
                    ("atax2", LaunchConfig::d1(640, 256)),
                ],
            )
            .unwrap();
        let k1 = &app.kernels[0];
        let m = k1.analysis.tb_throttle_m();
        if m > 0 {
            assert!(k1.analysis.plan.smem_carveout_bytes > 0);
            assert!(k1.transformed.shared_mem_bytes() > 0);
        }
    }

    #[test]
    fn legality_rejections_surface_as_spanned_warnings() {
        // A barrier inside a contended loop: the analysis wants to warp-
        // throttle it, legality refuses, and the compile records a W010
        // naming the loop's span.
        let src = "
            #define NX 4096
            __global__ void k(float *A, float *tmp) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                for (int j = 0; j < NX; j++) {
                    tmp[i] += A[i * NX + j];
                    __syncthreads();
                }
            }";
        let pipe = Pipeline::new(GpuConfig::titan_v());
        let app = pipe
            .compile_source(src, &[("k", LaunchConfig::d1(640, 256))])
            .unwrap();
        let k = &app.kernels[0];
        if k.analysis
            .loops
            .iter()
            .any(|l| l.decision.n > 1 && l.has_barrier)
        {
            let w = k
                .warnings
                .iter()
                .find(|d| d.code == codes::LOOP_SKIPPED_BARRIER)
                .expect("barrier rejection reported");
            let span = w.span.expect("names the loop span");
            let text = &src[span.start as usize..span.end as usize];
            assert!(text.starts_with("for"), "span covers the loop: {text:?}");
        }
    }
}
