//! End-to-end CATT driver: `parse → analyze → transform → emit`.

use crate::analysis::{analyze_kernel, search_factors, KernelAnalysis};
use crate::fault::FaultPlan;
use crate::transform::{tb_throttle, warp_throttle};
use catt_frontend::parse_module;
use catt_ir::kernel::{Kernel, LaunchConfig};
use catt_ir::printer;
use catt_sim::{GpuConfig, SMEM_CONFIGS_KB};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Pipeline error (parse or lowering failure, or an unlaunchable kernel).
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineError {
    pub message: String,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CATT pipeline: {}", self.message)
    }
}

impl std::error::Error for PipelineError {}

/// One compiled (analyzed + transformed) kernel.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// Kernel as parsed.
    pub original: Kernel,
    /// Kernel with CATT's throttling code inserted (identical to
    /// `original` when nothing needed throttling).
    pub transformed: Kernel,
    /// Launch configuration the analysis assumed.
    pub launch: LaunchConfig,
    /// Full analysis record (Table 3 data).
    pub analysis: KernelAnalysis,
    /// Re-emitted CUDA source of the transformed kernel.
    pub emitted_source: String,
    /// Why the throttling transform was abandoned, when it was: the
    /// kernel fell back to its original code (`transformed == original`)
    /// and this records the diagnostic. `None` on a clean compile.
    pub fallback_diagnostic: Option<String>,
}

impl CompiledKernel {
    /// Whether CATT changed this kernel.
    pub fn is_transformed(&self) -> bool {
        self.original != self.transformed
    }

    /// Whether the transform failed and the original code is being used.
    pub fn is_fallback(&self) -> bool {
        self.fallback_diagnostic.is_some()
    }
}

/// A compiled application: all kernels of a translation unit.
#[derive(Debug, Clone)]
pub struct CompiledApp {
    pub kernels: Vec<CompiledKernel>,
}

impl CompiledApp {
    /// The transformed kernels, in order (convenience for runners).
    pub fn transformed_kernels(&self) -> Vec<Kernel> {
        self.kernels.iter().map(|k| k.transformed.clone()).collect()
    }

    /// The original kernels, in order.
    pub fn original_kernels(&self) -> Vec<Kernel> {
        self.kernels.iter().map(|k| k.original.clone()).collect()
    }
}

/// The CATT compiler pipeline, parameterized by the target GPU.
#[derive(Debug, Clone)]
pub struct Pipeline {
    base_config: GpuConfig,
    /// Armed fault injections (`fail-transform` forces the fallback path).
    fault: FaultPlan,
}

impl Pipeline {
    /// A pipeline targeting `config` (e.g. [`GpuConfig::titan_v`]).
    /// Honors the `CATT_FAULT_PLAN` environment variable.
    pub fn new(base_config: GpuConfig) -> Pipeline {
        Pipeline {
            base_config,
            fault: FaultPlan::from_env(),
        }
    }

    /// Replace the fault plan (builder-style, for fault-injection tests).
    pub fn with_fault_plan(mut self, fault: FaultPlan) -> Pipeline {
        self.fault = fault;
        self
    }

    /// The target configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.base_config
    }

    /// Compile a whole translation unit. `launches` pairs each kernel name
    /// with the launch configuration the host uses (the compile-time-known
    /// launch parameters of §4.3).
    pub fn compile_source(
        &self,
        src: &str,
        launches: &[(&str, LaunchConfig)],
    ) -> Result<CompiledApp, PipelineError> {
        let module = parse_module(src).map_err(|e| PipelineError {
            message: e.to_string(),
        })?;
        let mut kernels = Vec::new();
        for k in &module.kernels {
            let launch = launches
                .iter()
                .find(|(n, _)| *n == k.name)
                .map(|(_, l)| *l)
                .ok_or_else(|| PipelineError {
                    message: format!("no launch configuration for kernel `{}`", k.name),
                })?;
            kernels.push(self.compile_kernel(k, launch)?);
        }
        Ok(CompiledApp { kernels })
    }

    /// Compile one kernel.
    pub fn compile_kernel(
        &self,
        kernel: &Kernel,
        launch: LaunchConfig,
    ) -> Result<CompiledKernel, PipelineError> {
        let program = catt_sim::lower(kernel).map_err(|e| PipelineError {
            message: e.to_string(),
        })?;
        let mut analysis =
            analyze_kernel(kernel, launch, &self.base_config, program.num_regs as u32).ok_or_else(
                || PipelineError {
                    message: format!("kernel `{}` cannot launch on the target", kernel.name),
                },
            )?;

        // When any loop needs TB-level throttling on a kernel without free
        // shared-memory space, the carve-out must be reconfigured (§4.3).
        // Follow the paper's Fig. 5 setting: largest carve-out, 32 KB L1D,
        // and re-run the factor search against that capacity.
        if analysis.tb_throttle_m() > 0 && analysis.plan.smem_carveout_bytes == 0 {
            let max_kb = *SMEM_CONFIGS_KB.last().expect("carve-out table");
            let mut cfg = self.base_config.clone();
            cfg.smem_carveout_bytes = max_kb * 1024;
            let l1d_lines = (cfg.l1d_bytes() / cfg.l1_line_bytes) as u64;
            for l in &mut analysis.loops {
                if l.decision.m > 0 {
                    let per_round: u64 = l.accesses.iter().map(|a| a.req_warp as u64).sum();
                    l.decision = search_factors(
                        per_round,
                        analysis.warps_per_tb,
                        analysis.plan.resident_tbs,
                        l1d_lines,
                    );
                }
            }
            analysis.plan.config = cfg;
            analysis.plan.smem_carveout_bytes = max_kb * 1024;
            analysis.plan.l1d_bytes = analysis.plan.config.l1d_bytes();
        }

        let (transformed, fallback_diagnostic) = self.transform_with_fallback(kernel, &analysis);
        let emitted_source = printer::kernel_to_string(&transformed);
        Ok(CompiledKernel {
            original: kernel.clone(),
            transformed,
            launch,
            analysis,
            emitted_source,
            fallback_diagnostic,
        })
    }

    /// Apply the throttling decisions with a guard rail: a transform that
    /// panics or produces a kernel that no longer lowers falls back to
    /// the *original* code — correct, merely unthrottled — with the
    /// diagnostic recorded. A mis-transformed kernel must never be worse
    /// than no transform at all.
    fn transform_with_fallback(
        &self,
        kernel: &Kernel,
        analysis: &KernelAnalysis,
    ) -> (Kernel, Option<String>) {
        if self.fault.fail_transform {
            return (
                kernel.clone(),
                Some("fault injection: transform forced to fail".to_string()),
            );
        }
        match catch_unwind(AssertUnwindSafe(|| apply_decisions(kernel, analysis))) {
            Ok(transformed) => match catt_sim::lower(&transformed) {
                Ok(_) => (transformed, None),
                Err(e) => (
                    kernel.clone(),
                    Some(format!("transformed kernel fails to lower: {e}")),
                ),
            },
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                (kernel.clone(), Some(format!("transform panicked: {msg}")))
            }
        }
    }
}

/// Apply the analysis decisions to a kernel: per-loop warp throttling for
/// every outermost resolved loop (descendants of a throttled loop are
/// skipped — splitting nested loops would interleave barrier sites), then
/// one kernel-wide TB throttle for the largest `M`.
pub fn apply_decisions(kernel: &Kernel, analysis: &KernelAnalysis) -> Kernel {
    let mut out = kernel.clone();
    // Select loops: resolved, n > 1, no barrier, a block-uniform guard
    // (spliced barriers under divergent control flow deadlock on real
    // hardware), and no throttled ancestor.
    let throttled: Vec<&crate::analysis::LoopAnalysis> = analysis
        .loops
        .iter()
        .filter(|l| {
            l.decision.is_throttled() && l.decision.n > 1 && !l.has_barrier && !l.divergent_guard
        })
        .collect();
    let selected: Vec<(usize, u32)> = throttled
        .iter()
        .filter(|l| {
            // Walk ancestors; drop if any ancestor is itself selected.
            let mut p = l.parent;
            while let Some(pid) = p {
                if throttled.iter().any(|t| t.loop_id == pid) {
                    return false;
                }
                p = analysis
                    .loops
                    .iter()
                    .find(|x| x.loop_id == pid)
                    .and_then(|x| x.parent);
            }
            true
        })
        .map(|l| (l.loop_id, l.decision.n))
        .collect();

    // Apply from the highest loop id down so earlier ids stay valid while
    // later subtrees get duplicated.
    let mut ordered = selected;
    ordered.sort_by_key(|&(id, _)| std::cmp::Reverse(id));
    for (id, n) in ordered {
        if let Some(t) = warp_throttle(&out, id, n, analysis.warps_per_tb) {
            out = t;
        }
    }

    let m = analysis.tb_throttle_m();
    if m > 0 && m < analysis.plan.resident_tbs {
        let target = analysis.plan.resident_tbs - m;
        if let Some(t) = tb_throttle(
            &out,
            target,
            analysis.plan.config.smem_carveout_bytes,
            kernel.shared_mem_bytes(),
        ) {
            out = t;
        }
    }
    out
}

/// Apply a *uniform* `(n, m)` throttling to a kernel — the BFTT baseline's
/// transform: the same warp factor on every eligible outermost loop and
/// one TB reduction, regardless of per-loop analysis.
pub fn apply_uniform(
    kernel: &Kernel,
    n: u32,
    m: u32,
    warps_per_tb: u32,
    resident_tbs: u32,
    carveout_bytes: u32,
) -> Kernel {
    let mut out = kernel.clone();
    if n > 1 {
        // The block shape is implied by `warps_per_tb`; it feeds the
        // block-uniformity proof for guards over the linear thread id.
        let block = (warps_per_tb * crate::analysis::WARP_SIZE, 1, 1);
        let mut loops = crate::transform::eligible_loops_for(kernel, block, None);
        loops.sort_by(|a, b| b.cmp(a));
        for id in loops {
            if let Some(t) = warp_throttle(&out, id, n, warps_per_tb) {
                out = t;
            }
        }
    }
    if m > 0 && m < resident_tbs {
        let carveout = if carveout_bytes == 0 {
            // Reconfigure like Fig. 5 when no shared space exists.
            96 * 1024
        } else {
            carveout_bytes
        };
        if let Some(t) = tb_throttle(&out, resident_tbs - m, carveout, kernel.shared_mem_bytes()) {
            out = t;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const ATAX_SRC: &str = "
        #define NX 4096
        __global__ void atax1(float *A, float *B, float *tmp) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < NX) {
                for (int j = 0; j < NX; j++) {
                    tmp[i] += A[i * NX + j] * B[j];
                }
            }
        }
        __global__ void atax2(float *A, float *tmp, float *y) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < NX) {
                for (int j = 0; j < NX; j++) {
                    y[i] += A[j * NX + i] * tmp[j];
                }
            }
        }";

    #[test]
    fn compiles_atax_throttling_only_kernel1() {
        let pipe = Pipeline::new(GpuConfig::titan_v());
        let launch = LaunchConfig::d1(640, 256);
        let app = pipe
            .compile_source(ATAX_SRC, &[("atax1", launch), ("atax2", launch)])
            .unwrap();
        assert_eq!(app.kernels.len(), 2);
        let k1 = &app.kernels[0];
        let k2 = &app.kernels[1];
        assert!(k1.is_transformed(), "kernel 1 has the divergent loop");
        assert!(
            !k2.is_transformed(),
            "kernel 2 is coalesced and must be untouched (the CATT-vs-BFTT case)"
        );
        assert!(k1.emitted_source.contains("__syncthreads();"));
        // The emitted source re-parses.
        assert!(catt_frontend::parse_kernel(&k1.emitted_source).is_ok());
    }

    #[test]
    fn missing_launch_is_an_error() {
        let pipe = Pipeline::new(GpuConfig::titan_v());
        let err = pipe
            .compile_source(ATAX_SRC, &[("atax1", LaunchConfig::d1(640, 256))])
            .unwrap_err();
        assert!(err.message.contains("atax2"));
    }

    #[test]
    fn uniform_transform_throttles_every_eligible_loop() {
        let k = catt_frontend::parse_kernel(ATAX_SRC).unwrap();
        let t = apply_uniform(&k, 2, 0, 8, 8, 0);
        let src = printer::kernel_to_string(&t);
        assert_eq!(src.matches("__syncthreads();").count(), 2);
        // n=1, m=0 is the identity.
        let id = apply_uniform(&k, 1, 0, 8, 8, 0);
        assert_eq!(id, k);
    }

    #[test]
    fn uniform_tb_throttle_reconfigures_carveout() {
        let k = catt_frontend::parse_kernel(ATAX_SRC).unwrap();
        let t = apply_uniform(&k, 1, 6, 8, 8, 0);
        // 8-6=2 TBs on the reconfigured 96 KB carve-out → 48 KB dummy.
        assert_eq!(t.shared_mem_bytes(), 48 * 1024);
    }

    #[test]
    fn tb_decision_triggers_carveout_reconfiguration() {
        // Force TB throttling by shrinking the L1D cap so even one warp
        // group overflows at full TB count.
        let mut cfg = GpuConfig::titan_v();
        cfg.l1_cap_bytes = Some(8 * 1024); // 64 lines
        let pipe = Pipeline::new(cfg);
        let app = pipe
            .compile_source(
                ATAX_SRC,
                &[
                    ("atax1", LaunchConfig::d1(640, 256)),
                    ("atax2", LaunchConfig::d1(640, 256)),
                ],
            )
            .unwrap();
        let k1 = &app.kernels[0];
        let m = k1.analysis.tb_throttle_m();
        if m > 0 {
            assert!(k1.analysis.plan.smem_carveout_bytes > 0);
            assert!(k1.transformed.shared_mem_bytes() > 0);
        }
    }
}
