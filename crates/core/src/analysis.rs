//! Static footprint analysis and throttling-factor search (paper §4.2).

use crate::occupancy::{plan_l1_smem, L1SmemPlan};
use catt_ir::affine::{eval_poly, AffineEnv, IndexForm};
use catt_ir::expr::Expr;
use catt_ir::kernel::{Kernel, LaunchConfig, ParamTy};
use catt_ir::stmt::{LValue, Stmt};
use catt_sim::GpuConfig;
use std::collections::HashSet;

/// Warp size the analysis assumes (`SIZE_warp`).
pub const WARP_SIZE: u32 = 32;

/// Analysis of one global-memory access inside a loop.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessAnalysis {
    /// Array (kernel pointer parameter) accessed.
    pub array: String,
    /// Whether this is a store.
    pub is_store: bool,
    /// `C_tid` of Eq. 5 in elements (`None` = irregular).
    pub c_tid: Option<i64>,
    /// `C_i` of Eq. 5 in elements (`None` = irregular).
    pub c_iter: Option<i64>,
    /// `REQ_warp` of Eq. 7: 128-byte lines requested per warp execution.
    pub req_warp: u32,
    /// Eq. 6: the fetched line is re-accessed by a following iteration.
    pub has_locality: bool,
}

/// The `(N, M)` throttling factors of Eq. 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThrottleDecision {
    /// Warp divisor: run `#Warps_TB / N` warps of each block at a time.
    pub n: u32,
    /// Resident-block reduction: run `#TB_SM − M` blocks per SM.
    pub m: u32,
    /// Whether the chosen factors bring the footprint under the L1D
    /// capacity. `false` = the CORR case: even maximum throttling cannot
    /// fit, so CATT leaves the loop untouched (§5.1).
    pub resolved: bool,
}

impl ThrottleDecision {
    /// No throttling.
    pub const NONE: ThrottleDecision = ThrottleDecision {
        n: 1,
        m: 0,
        resolved: true,
    };

    /// Whether this decision changes anything.
    pub fn is_throttled(&self) -> bool {
        self.resolved && (self.n > 1 || self.m > 0)
    }
}

/// Analysis of one loop.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopAnalysis {
    /// Pre-order index of the loop among the kernel's `for`/`while`
    /// statements (shared with [`crate::transform`]).
    pub loop_id: usize,
    /// Enclosing loop's `loop_id`, if nested.
    pub parent: Option<usize>,
    /// Iterator variable (`None` for `while` loops).
    pub iter_var: Option<String>,
    /// Whether the loop body contains `__syncthreads()` — such loops are
    /// never warp-throttled (splitting them would break barrier
    /// semantics).
    pub has_barrier: bool,
    /// Whether the loop sits under a conditional that cannot be proven
    /// block-uniform. Warp throttling such a loop would splice
    /// `__syncthreads()` into divergent control flow — a deadlock on real
    /// hardware — so these loops fall back to TB-level throttling, like
    /// barrier loops.
    pub divergent_guard: bool,
    /// Global accesses attributed to this loop (innermost-loop rule).
    pub accesses: Vec<AccessAnalysis>,
    /// Eq. 8 at full TLP: 128-byte lines touched by one access round of
    /// all concurrent warps.
    pub size_req_lines: u64,
    /// Some access exhibits cross-iteration locality (Eq. 6) — the
    /// precondition for throttling to help.
    pub has_locality: bool,
    /// Footprint exceeds the L1D (cache contention predicted).
    pub contended: bool,
    /// Chosen factors.
    pub decision: ThrottleDecision,
}

impl LoopAnalysis {
    /// The `(#warps, #TBs)` pair this loop runs at, Table 3 style.
    pub fn tlp(&self, warps_per_tb: u32, resident_tbs: u32) -> (u32, u32) {
        if !self.decision.is_throttled() {
            return (warps_per_tb, resident_tbs);
        }
        (
            warps_per_tb / self.decision.n,
            resident_tbs - self.decision.m,
        )
    }
}

/// Whole-kernel analysis result.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelAnalysis {
    pub kernel_name: String,
    /// L1D / shared-memory plan (paper §4.1).
    pub plan: L1SmemPlan,
    /// `#Warps_TB`.
    pub warps_per_tb: u32,
    /// Register estimate per thread used for Eq. 2.
    pub regs_per_thread: u32,
    /// Per-loop analyses, in pre-order.
    pub loops: Vec<LoopAnalysis>,
}

impl KernelAnalysis {
    /// Baseline TLP `(#warps_TB, #TB_SM)`.
    pub fn baseline_tlp(&self) -> (u32, u32) {
        (self.warps_per_tb, self.plan.resident_tbs)
    }

    /// Whether CATT would transform anything in this kernel.
    pub fn any_throttling(&self) -> bool {
        self.loops.iter().any(|l| l.decision.is_throttled())
    }

    /// Largest `M` over all loops (TB-level throttling is kernel-wide: a
    /// dummy shared array changes occupancy for the whole kernel).
    pub fn tb_throttle_m(&self) -> u32 {
        self.loops
            .iter()
            .filter(|l| l.decision.resolved)
            .map(|l| l.decision.m)
            .max()
            .unwrap_or(0)
    }
}

/// `REQ_warp` (Eq. 7) from `C_tid` (elements): `1` when all threads share
/// one address, otherwise the lines one warp's coalesced accesses span,
/// capped at the warp size; irregular accesses are conservatively `1`
/// (§4.2). Exact for one-dimensional thread blocks.
pub fn req_warp(c_tid: Option<i64>) -> u32 {
    match c_tid {
        None => 1,
        Some(0) => 1,
        Some(c) => (c.unsigned_abs() as u32).clamp(1, WARP_SIZE),
    }
}

/// `REQ_warp` by per-lane address enumeration — the paper's handling of
/// multidimensional thread blocks (§4.2: "we examine every address
/// accessed by each thread in a warp"). Lanes map to `threadIdx` x-major;
/// the distinct 128-byte lines their affine offsets fall into are counted.
/// Coincides with Eq. 7 on 1-D blocks.
pub fn req_warp_lanes(
    c_tid: Option<i64>,
    c_tid_y: Option<i64>,
    block: (u32, u32),
    line_bytes: u32,
    elem_bytes: u32,
) -> u32 {
    let (Some(cx), Some(cy)) = (c_tid, c_tid_y) else {
        return 1; // irregular: conservative (§4.2)
    };
    let bx = block.0.max(1) as i64;
    let by = block.1.max(1) as i64;
    let mut lines = [0i64; WARP_SIZE as usize];
    let mut n = 0usize;
    for lane in 0..WARP_SIZE as i64 {
        let x = lane % bx;
        let y = (lane / bx) % by;
        let byte_off = (cx * x + cy * y) * elem_bytes as i64;
        let l = byte_off.div_euclid(line_bytes as i64);
        if !lines[..n].contains(&l) {
            lines[n] = l;
            n += 1;
        }
    }
    n as u32
}

/// Eq. 6: cross-iteration locality exists when the intra-thread distance
/// is within a cache line. Irregular (`None`) accesses are treated as
/// having locality — the conservative direction, consistent with
/// `C_tid := 1`.
pub fn has_locality(c_iter: Option<i64>, line_bytes: u32, elem_bytes: u32) -> bool {
    match c_iter {
        None => true,
        Some(c) => c.unsigned_abs() * elem_bytes as u64 <= line_bytes as u64,
    }
}

/// Eq. 9 search: smallest throttling making the footprint fit.
///
/// `N` walks the divisors of `warps_per_tb` in increasing order (the paper
/// uses powers of two; divisors generalize to non-power-of-two blocks and
/// coincide on the paper's workloads). If halving warps to one group of
/// one warp still overflows, `M` reduces resident blocks. Returns
/// `resolved = false` when even `(N = warps, M = tbs−1)` overflows.
pub fn search_factors(
    reqs_per_round: u64,
    warps_per_tb: u32,
    resident_tbs: u32,
    l1d_lines: u64,
) -> ThrottleDecision {
    let fits = |warps: u32, tbs: u32| reqs_per_round * warps as u64 * tbs as u64 <= l1d_lines;
    if fits(warps_per_tb, resident_tbs) {
        return ThrottleDecision::NONE;
    }
    for n in 2..=warps_per_tb {
        if !warps_per_tb.is_multiple_of(n) {
            continue;
        }
        if fits(warps_per_tb / n, resident_tbs) {
            return ThrottleDecision {
                n,
                m: 0,
                resolved: true,
            };
        }
    }
    for m in 1..resident_tbs {
        if fits(1, resident_tbs - m) {
            return ThrottleDecision {
                n: warps_per_tb,
                m,
                resolved: true,
            };
        }
    }
    ThrottleDecision {
        n: warps_per_tb,
        m: resident_tbs.saturating_sub(1),
        resolved: false,
    }
}

/// Analyze a kernel under a launch configuration (paper §4).
///
/// `regs_per_thread` is the register estimate feeding Eq. 2 — obtain it
/// from `catt_sim::lower(kernel)?.num_regs` (the role of `nvcc -v`).
pub fn analyze_kernel(
    kernel: &Kernel,
    launch: LaunchConfig,
    base_config: &GpuConfig,
    regs_per_thread: u32,
) -> Option<KernelAnalysis> {
    let smem = kernel.shared_mem_bytes();
    let mut plan = plan_l1_smem(
        base_config,
        smem,
        regs_per_thread,
        launch.threads_per_block(),
    )?;
    // The launch configuration is compile-time known (§4.3), so the
    // concurrency estimate can be sharpened: a grid with fewer blocks
    // than the occupancy bound never fills the SMs.
    let blocks_per_sm = launch
        .num_blocks()
        .div_ceil(base_config.num_sms.max(1))
        .max(1);
    plan.resident_tbs = plan.resident_tbs.min(blocks_per_sm);
    let warps_per_tb = launch.warps_per_block();
    let l1d_lines = (plan.l1d_bytes / plan.config.l1_line_bytes) as u64;
    let line_bytes = plan.config.l1_line_bytes;

    let mut env = AffineEnv::with_launch(
        (launch.block.x, launch.block.y, launch.block.z),
        (launch.grid.x, launch.grid.y, launch.grid.z),
    );
    let globals: HashSet<&str> = kernel
        .params
        .iter()
        .filter(|p| matches!(p.ty, ParamTy::Ptr(_)))
        .map(|p| p.name.as_str())
        .collect();

    let mut ctx = Walker {
        globals,
        loops: Vec::new(),
        next_loop_id: 0,
        line_bytes,
        block: (launch.block.x, launch.block.y),
    };
    ctx.walk(&kernel.body, &mut env, None, false);

    // Decide factors per loop.
    let mut loops = ctx.loops;
    for l in &mut loops {
        l.size_req_lines = l.accesses.iter().map(|a| a.req_warp as u64).sum::<u64>()
            * warps_per_tb as u64
            * plan.resident_tbs as u64;
        l.has_locality = l.accesses.iter().any(|a| a.has_locality);
        // Contention is only *predicted* from analyzable divergence: a
        // loop whose footprint estimate consists purely of irregular
        // accesses (each conservatively counted as one line, §4.2) never
        // triggers throttling — the conservative estimate exists to
        // prevent degradation from mis-throttling, not to cause it.
        let regular_divergence = l
            .accesses
            .iter()
            .any(|a| a.c_tid.is_some() && a.req_warp > 1);
        l.contended = l.has_locality
            && regular_divergence
            && !l.accesses.is_empty()
            && l.size_req_lines > l1d_lines;
        l.decision = if l.contended {
            let per_round: u64 = l.accesses.iter().map(|a| a.req_warp as u64).sum();
            search_factors(per_round, warps_per_tb, plan.resident_tbs, l1d_lines)
        } else {
            ThrottleDecision::NONE
        };
        // Loops whose body synchronizes — or that sit under a divergent
        // guard, where spliced barriers would deadlock real hardware —
        // cannot be warp-split; fall back to TB-level throttling with an
        // equivalent concurrency reduction when possible, otherwise leave
        // untouched.
        if (l.has_barrier || l.divergent_guard) && l.decision.is_throttled() && l.decision.n > 1 {
            let target_warps = (warps_per_tb / l.decision.n) * (plan.resident_tbs - l.decision.m);
            let tbs_needed = (target_warps / warps_per_tb).max(1);
            l.decision = ThrottleDecision {
                n: 1,
                m: plan.resident_tbs - tbs_needed.min(plan.resident_tbs),
                resolved: l.decision.resolved,
            };
        }
    }

    Some(KernelAnalysis {
        kernel_name: kernel.name.clone(),
        plan,
        warps_per_tb,
        regs_per_thread,
        loops,
    })
}

struct Walker<'a> {
    globals: HashSet<&'a str>,
    loops: Vec<LoopAnalysis>,
    next_loop_id: usize,
    line_bytes: u32,
    block: (u32, u32),
}

impl<'a> Walker<'a> {
    /// Record every global access in expression `e`, attributed to
    /// `loop_idx` (index into `self.loops`).
    fn record_expr(&mut self, e: &Expr, env: &AffineEnv, loop_idx: Option<usize>) {
        match e {
            Expr::Index(name, idx) => {
                self.record_access(name, idx, false, env, loop_idx);
                self.record_expr(idx, env, loop_idx);
            }
            Expr::Unary(_, a) | Expr::Cast(_, a) => self.record_expr(a, env, loop_idx),
            Expr::Binary(_, a, b) => {
                self.record_expr(a, env, loop_idx);
                self.record_expr(b, env, loop_idx);
            }
            Expr::Select(c, a, b) => {
                self.record_expr(c, env, loop_idx);
                self.record_expr(a, env, loop_idx);
                self.record_expr(b, env, loop_idx);
            }
            Expr::Call(_, args) => {
                for a in args {
                    self.record_expr(a, env, loop_idx);
                }
            }
            _ => {}
        }
    }

    fn record_access(
        &mut self,
        name: &str,
        idx: &Expr,
        is_store: bool,
        env: &AffineEnv,
        loop_idx: Option<usize>,
    ) {
        if !self.globals.contains(name) {
            return;
        }
        let Some(li) = loop_idx else {
            return; // accesses outside loops are not analyzed (§3)
        };
        let iter_var = self.loops[li].iter_var.clone();
        let form: IndexForm = catt_ir::affine::index_form(idx, iter_var.as_deref(), env);
        let a = AccessAnalysis {
            array: name.to_string(),
            is_store,
            c_tid: form.c_tid,
            c_iter: form.c_iter,
            req_warp: req_warp_lanes(form.c_tid, form.c_tid_y, self.block, self.line_bytes, 4),
            has_locality: has_locality(form.c_iter, self.line_bytes, 4),
        };
        self.loops[li].accesses.push(a);
    }

    /// Names assigned (not declared) anywhere in `stmts`.
    fn assigned_vars(stmts: &[Stmt]) -> HashSet<String> {
        let mut out = HashSet::new();
        catt_ir::visit::walk_stmts(stmts, &mut |s| {
            if let Stmt::Assign {
                lhs: LValue::Var(n),
                ..
            } = s
            {
                out.insert(n.clone());
            }
        });
        out
    }

    fn walk(
        &mut self,
        stmts: &[Stmt],
        env: &mut AffineEnv,
        loop_idx: Option<usize>,
        divergent: bool,
    ) {
        for s in stmts {
            match s {
                Stmt::DeclScalar { name, init, .. } => {
                    if let Some(e) = init {
                        self.record_expr(e, env, loop_idx);
                        match eval_poly(e, env) {
                            Some(p) => env.bind(name, p),
                            None => env.poison(name),
                        }
                    } else {
                        env.poison(name);
                    }
                }
                Stmt::DeclShared { .. } => {}
                Stmt::Assign { lhs, op, rhs } => {
                    if let LValue::Elem(name, idx) = lhs {
                        self.record_expr(idx, env, loop_idx);
                        self.record_access(name, idx, true, env, loop_idx);
                        // A compound store (`+=`) also loads the element.
                        if op.is_some() {
                            self.record_access(name, idx, false, env, loop_idx);
                        }
                    }
                    self.record_expr(rhs, env, loop_idx);
                    if let LValue::Var(name) = lhs {
                        if loop_idx.is_some() {
                            // Re-assignment inside a loop: value varies per
                            // iteration in a way forward substitution does
                            // not model.
                            env.poison(name);
                        } else {
                            match eval_poly(rhs, env) {
                                Some(p) => env.bind(name, p),
                                None => env.poison(name),
                            }
                        }
                    }
                }
                Stmt::If { cond, then, els } => {
                    self.record_expr(cond, env, loop_idx);
                    let div = divergent || !crate::transform::guard_block_uniform(cond, env);
                    self.walk(then, env, loop_idx, div);
                    self.walk(els, env, loop_idx, div);
                    // Conservatively forget anything either branch wrote.
                    for v in Self::assigned_vars(then).union(&Self::assigned_vars(els)) {
                        env.poison(v);
                    }
                }
                Stmt::For {
                    var,
                    init,
                    bound,
                    step,
                    body,
                    ..
                } => {
                    let id = self.next_loop_id;
                    self.next_loop_id += 1;
                    let mut has_barrier = false;
                    catt_ir::visit::walk_stmts(body, &mut |s| {
                        has_barrier |= matches!(s, Stmt::SyncThreads);
                    });
                    self.loops.push(LoopAnalysis {
                        loop_id: id,
                        parent: loop_idx,
                        iter_var: Some(var.clone()),
                        has_barrier,
                        divergent_guard: divergent,
                        accesses: Vec::new(),
                        size_req_lines: 0,
                        has_locality: false,
                        contended: false,
                        decision: ThrottleDecision::NONE,
                    });
                    let li = self.loops.len() - 1;
                    self.record_expr(init, env, loop_idx);
                    self.record_expr(bound, env, Some(li));
                    self.record_expr(step, env, Some(li));
                    // The iterator is its own symbol inside the body; any
                    // variables the body assigns are unknown per-iteration.
                    let mut inner = env.clone();
                    inner.bind(
                        var,
                        catt_ir::affine::Poly::sym(catt_ir::affine::Sym::Var(var.clone())),
                    );
                    for v in Self::assigned_vars(body) {
                        inner.poison(&v);
                    }
                    self.walk(body, &mut inner, Some(li), divergent);
                    // After the loop: anything it assigned is unknown.
                    for v in Self::assigned_vars(body) {
                        env.poison(&v);
                    }
                    env.poison(var);
                }
                Stmt::While { cond, body } => {
                    let id = self.next_loop_id;
                    self.next_loop_id += 1;
                    let mut has_barrier = false;
                    catt_ir::visit::walk_stmts(body, &mut |s| {
                        has_barrier |= matches!(s, Stmt::SyncThreads);
                    });
                    self.loops.push(LoopAnalysis {
                        loop_id: id,
                        parent: loop_idx,
                        iter_var: None,
                        has_barrier,
                        divergent_guard: divergent,
                        accesses: Vec::new(),
                        size_req_lines: 0,
                        has_locality: false,
                        contended: false,
                        decision: ThrottleDecision::NONE,
                    });
                    let li = self.loops.len() - 1;
                    self.record_expr(cond, env, Some(li));
                    let mut inner = env.clone();
                    for v in Self::assigned_vars(body) {
                        inner.poison(&v);
                    }
                    self.walk(body, &mut inner, Some(li), divergent);
                    for v in Self::assigned_vars(body) {
                        env.poison(&v);
                    }
                }
                Stmt::ExprStmt(e) => self.record_expr(e, env, loop_idx),
                Stmt::SyncThreads | Stmt::Break | Stmt::Return => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catt_frontend::parse_kernel;

    fn titan() -> GpuConfig {
        GpuConfig::titan_v()
    }

    /// The paper's running example: ATAX kernel 1 (Fig. 1) at the
    /// paper's own launch `<<<80*4, 256>>>` (4 blocks per SM). Eq. 8: per
    /// round the loop requests tmp (1 store + 1 load for `+=`) + A (32) +
    /// B (1) lines per warp — 35 lines × 8 warps × 4 TBs = 1120 lines >
    /// 1024 (128 KB L1D), so the loop is contended; N = 2 gives 560 ≤
    /// 1024, i.e. TLP (4, 4) — exactly Table 3's CATT column at max L1D.
    #[test]
    fn atax_fig1_is_contended_and_throttled() {
        let k = parse_kernel(
            "#define NX 40960
             __global__ void atax1(float *A, float *B, float *tmp) {
                 int i = blockIdx.x * blockDim.x + threadIdx.x;
                 if (i < NX) {
                     for (int j = 0; j < NX; j++) {
                         tmp[i] += A[i * NX + j] * B[j];
                     }
                 }
             }",
        )
        .unwrap();
        let a = analyze_kernel(&k, LaunchConfig::d1(320, 256), &titan(), 32).unwrap();
        assert_eq!(a.baseline_tlp(), (8, 4));
        assert_eq!(a.loops.len(), 1);
        let l = &a.loops[0];
        // Accesses: store tmp, load tmp (compound), load A, load B.
        assert_eq!(l.accesses.len(), 4);
        let a_access = l.accesses.iter().find(|x| x.array == "A").unwrap();
        assert_eq!(a_access.c_tid, Some(40960));
        assert_eq!(a_access.c_iter, Some(1));
        assert_eq!(a_access.req_warp, 32);
        assert!(a_access.has_locality);
        let b_access = l.accesses.iter().find(|x| x.array == "B").unwrap();
        assert_eq!(b_access.req_warp, 1);
        assert!(l.contended);
        assert!(l.decision.is_throttled());
        assert_eq!(
            l.decision,
            ThrottleDecision {
                n: 2,
                m: 0,
                resolved: true
            }
        );
        assert_eq!(l.tlp(a.warps_per_tb, a.plan.resident_tbs), (4, 4));
    }

    /// ATAX kernel 2 (the transposed reduction) is well coalesced:
    /// `tmp[j]` is uniform per iteration, `A[j * NX + i]` has C_tid = 1 —
    /// no contention, CATT must not throttle (the case where CATT beats
    /// BFTT, §5.1).
    #[test]
    fn atax_kernel2_is_not_throttled() {
        let k = parse_kernel(
            "#define NX 4096
             __global__ void atax2(float *A, float *tmp, float *y) {
                 int i = blockIdx.x * blockDim.x + threadIdx.x;
                 if (i < NX) {
                     for (int j = 0; j < NX; j++) {
                         y[i] += A[j * NX + i] * tmp[j];
                     }
                 }
             }",
        )
        .unwrap();
        let a = analyze_kernel(&k, LaunchConfig::d1(640, 256), &titan(), 32).unwrap();
        let l = &a.loops[0];
        let a_access = l.accesses.iter().find(|x| x.array == "A").unwrap();
        assert_eq!(a_access.c_tid, Some(1));
        assert_eq!(a_access.c_iter, Some(4096));
        assert_eq!(a_access.req_warp, 1);
        assert!(
            !a_access.has_locality,
            "A line is not reused next iteration"
        );
        // y[i] has locality (c_iter 0) but footprint is small.
        assert!(!l.contended);
        assert!(!l.decision.is_throttled());
        assert_eq!(l.tlp(a.warps_per_tb, a.plan.resident_tbs), (8, 8));
    }

    #[test]
    fn indirect_access_is_conservative() {
        // BFS-like gather: cols[j] is affine, x[cols[j]] is irregular.
        let k = parse_kernel(
            "__global__ void spmv(int *cols, float *x, float *y, int n) {
                 int i = blockIdx.x * blockDim.x + threadIdx.x;
                 if (i < n) {
                     for (int j = 0; j < n; j++) {
                         y[i] += x[cols[j]];
                     }
                 }
             }",
        )
        .unwrap();
        let a = analyze_kernel(&k, LaunchConfig::d1(160, 256), &titan(), 24).unwrap();
        let l = &a.loops[0];
        let x = l.accesses.iter().find(|x| x.array == "x").unwrap();
        assert_eq!(x.c_tid, None, "indirect index must be irregular");
        assert_eq!(x.req_warp, 1, "conservative C_tid := 1 (§4.2)");
        // Small conservative footprint: untouched.
        assert!(!l.decision.is_throttled());
    }

    #[test]
    fn search_factors_walks_n_then_m() {
        // 35 lines/round, 8 warps, 8 TBs, 1024-line L1D (ATAX numbers):
        // 35·8·8 = 2240 > 1024; N=2 → 1120 > 1024; N=4 → 560 ≤ 1024.
        let d = search_factors(35, 8, 8, 1024);
        assert_eq!(
            d,
            ThrottleDecision {
                n: 4,
                m: 0,
                resolved: true
            }
        );
        // Tiny L1D forces M as well: 35 lines, 1 warp × 8 TB = 280 > 64;
        // M reduces TBs: 35·1·1 = 35 ≤ 64 at M = 7.
        let d = search_factors(35, 8, 8, 64);
        assert_eq!(
            d,
            ThrottleDecision {
                n: 8,
                m: 7,
                resolved: true
            }
        );
        // CORR case: unresolvable.
        let d = search_factors(100, 8, 8, 64);
        assert!(!d.resolved);
        // Fits outright.
        assert_eq!(search_factors(4, 8, 8, 1024), ThrottleDecision::NONE);
    }

    #[test]
    fn req_warp_equation7() {
        assert_eq!(req_warp(Some(0)), 1);
        assert_eq!(req_warp(Some(1)), 1);
        assert_eq!(req_warp(Some(8)), 8);
        assert_eq!(req_warp(Some(40960)), 32);
        assert_eq!(req_warp(Some(-4)), 4);
        assert_eq!(req_warp(None), 1);
    }

    #[test]
    fn locality_equation6() {
        assert!(has_locality(Some(0), 128, 4));
        assert!(has_locality(Some(1), 128, 4));
        assert!(has_locality(Some(32), 128, 4));
        assert!(!has_locality(Some(33), 128, 4));
        assert!(!has_locality(Some(4096), 128, 4));
        assert!(has_locality(None, 128, 4));
    }

    #[test]
    fn nested_loops_attribute_to_innermost() {
        let k = parse_kernel(
            "__global__ void gemm(float *A, float *B, float *C, int n) {
                 int i = blockIdx.x * blockDim.x + threadIdx.x;
                 for (int r = 0; r < 4; r++) {
                     for (int j = 0; j < n; j++) {
                         C[i] += A[i * n + j] * B[j * n + i];
                     }
                 }
             }",
        )
        .unwrap();
        let a = analyze_kernel(&k, LaunchConfig::d1(16, 256), &titan(), 32).unwrap();
        assert_eq!(a.loops.len(), 2);
        assert!(
            a.loops[0].accesses.is_empty(),
            "outer loop has no direct accesses"
        );
        assert_eq!(a.loops[1].accesses.len(), 4);
        // B[j*n+i]: C_tid = 1, C_i = n (symbolic => n is a Var symbol, so
        // c_iter coefficient of j is n? no — `n` is a scalar param symbol;
        // j*n is a *non-linear* product of two symbols → irregular).
        let b = a.loops[1].accesses.iter().find(|x| x.array == "B").unwrap();
        assert_eq!(b.c_tid, None);
    }

    #[test]
    fn assignment_in_loop_poisons_variable() {
        let k = parse_kernel(
            "__global__ void k(float *A, int n) {
                 int i = blockIdx.x * blockDim.x + threadIdx.x;
                 int base = i;
                 for (int j = 0; j < n; j++) {
                     A[base] = 0.0f;
                     base = base + 7;
                 }
             }",
        )
        .unwrap();
        let a = analyze_kernel(&k, LaunchConfig::d1(16, 256), &titan(), 16).unwrap();
        let acc = &a.loops[0].accesses[0];
        assert_eq!(acc.c_tid, None, "loop-carried base must be irregular");
    }

    #[test]
    fn barrier_loop_is_not_warp_split() {
        let k = parse_kernel(
            "#define N 40960
             __global__ void k(float *A, float *tmp) {
                 __shared__ float s[32];
                 int i = blockIdx.x * blockDim.x + threadIdx.x;
                 for (int j = 0; j < N; j++) {
                     s[threadIdx.x % 32] = tmp[i];
                     __syncthreads();
                     tmp[i] += A[i * N + j] + s[0];
                 }
             }",
        )
        .unwrap();
        let a = analyze_kernel(&k, LaunchConfig::d1(160, 256), &titan(), 32).unwrap();
        let l = &a.loops[0];
        assert!(l.has_barrier);
        if l.decision.is_throttled() {
            assert_eq!(l.decision.n, 1, "barrier loops may only TB-throttle");
        }
    }

    #[test]
    fn launch_with_scalar_grid_param_still_analyzes() {
        // Grid-stride style loop where the bound is a scalar parameter.
        let k = parse_kernel(
            "__global__ void k(float *A, int n) {
                 int i = blockIdx.x * blockDim.x + threadIdx.x;
                 for (int j = 0; j < n; j++) {
                     A[i * 1024 + j] += 1.0f;
                 }
             }",
        )
        .unwrap();
        let a = analyze_kernel(&k, LaunchConfig::d1(640, 256), &titan(), 16).unwrap();
        let acc = &a.loops[0].accesses[0];
        assert_eq!(acc.c_tid, Some(1024));
        assert_eq!(acc.c_iter, Some(1));
        assert!(a.loops[0].contended);
    }
}
