//! Source-to-source throttling transformations (paper §4.3).

use catt_ir::affine::{eval_poly, AffineEnv, Poly, Sym};
use catt_ir::expr::{BinOp, Builtin, Expr, UnOp};
use catt_ir::kernel::Kernel;
use catt_ir::stmt::{LValue, Stmt};
use catt_ir::types::DType;

/// Warp size used in the generated guards (`WS` in paper Fig. 4).
pub const WARP_SIZE: i64 = 32;

/// Name of the dummy shared array inserted by TB-level throttling
/// (paper Fig. 5 calls it `dummy_shared`).
pub const DUMMY_SHARED: &str = "catt_dummy_shared";

/// Apply **warp-level throttling** (paper Fig. 4) to the loop with
/// pre-order index `loop_id`: replace it with `n` copies, each guarded so
/// that only one group of `#Warps_TB / n` warps executes it, separated by
/// `__syncthreads()` so the groups run one after another.
///
/// Returns the transformed kernel, or `None` when `loop_id` does not
/// exist, `n` does not evenly divide the block's warps, or `n <= 1`.
pub fn warp_throttle(kernel: &Kernel, loop_id: usize, n: u32, warps_per_tb: u32) -> Option<Kernel> {
    if n <= 1 || !warps_per_tb.is_multiple_of(n) || n > warps_per_tb {
        return None;
    }
    let group = (warps_per_tb / n) as i64;
    let mut counter = 0usize;
    let mut found = false;
    let mut out = kernel.clone();
    out.body = rewrite(&out.body, &mut counter, loop_id, &mut found, &|loop_stmt| {
        let mut seq = Vec::with_capacity(2 * n as usize);
        for k in 0..n as i64 {
            // if (threadIdx.x / WS >= k*g && threadIdx.x / WS < (k+1)*g)
            let wid = Expr::Builtin(Builtin::ThreadIdxX).div(Expr::int(WARP_SIZE));
            let guard = wid
                .clone()
                .ge(Expr::int(k * group))
                .and(wid.lt(Expr::int((k + 1) * group)));
            seq.push(Stmt::if_then(guard, vec![loop_stmt.clone()]));
            seq.push(Stmt::SyncThreads);
        }
        seq
    });
    found.then_some(out)
}

/// Replace the `loop_id`-th loop (pre-order over `for`/`while`) using
/// `make`, which maps the loop statement to its replacement sequence.
fn rewrite(
    stmts: &[Stmt],
    counter: &mut usize,
    target: usize,
    found: &mut bool,
    make: &dyn Fn(&Stmt) -> Vec<Stmt>,
) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            Stmt::For { .. } | Stmt::While { .. } => {
                let id = *counter;
                *counter += 1;
                if id == target {
                    *found = true;
                    out.extend(make(s));
                } else {
                    // Recurse into the body for nested targets.
                    match s {
                        Stmt::For {
                            var,
                            decl,
                            init,
                            cond_op,
                            bound,
                            step,
                            body,
                        } => out.push(Stmt::For {
                            var: var.clone(),
                            decl: *decl,
                            init: init.clone(),
                            cond_op: *cond_op,
                            bound: bound.clone(),
                            step: step.clone(),
                            body: rewrite(body, counter, target, found, make),
                        }),
                        Stmt::While { cond, body } => out.push(Stmt::While {
                            cond: cond.clone(),
                            body: rewrite(body, counter, target, found, make),
                        }),
                        _ => unreachable!(),
                    }
                }
            }
            Stmt::If { cond, then, els } => out.push(Stmt::If {
                cond: cond.clone(),
                then: rewrite(then, counter, target, found, make),
                els: rewrite(els, counter, target, found, make),
            }),
            other => out.push(other.clone()),
        }
    }
    out
}

/// Apply **TB-level throttling** (paper Fig. 5): insert a dummy
/// `__shared__` array sized so that only `target_tbs` blocks stay resident
/// per SM, plus a store so the allocation is not dead.
///
/// `carveout_bytes` is the SM's shared-memory carve-out and
/// `current_smem` the kernel's existing static shared usage. Returns
/// `None` when `target_tbs` is 0 or no dummy size can reach the target
/// (e.g. it already holds).
pub fn tb_throttle(
    kernel: &Kernel,
    target_tbs: u32,
    carveout_bytes: u32,
    current_smem: u32,
) -> Option<Kernel> {
    if target_tbs == 0 {
        return None;
    }
    // Want: carveout / smem' == target  ⇒  smem' = carveout / target
    // (integer floor keeps exactly `target` blocks resident).
    let per_tb = carveout_bytes / target_tbs;
    if per_tb <= current_smem {
        return None; // cannot reach the target by adding shared memory
    }
    let dummy_bytes = per_tb - current_smem;
    let len = dummy_bytes / 4;
    if len == 0 {
        return None;
    }
    let mut out = kernel.clone();
    let mut prologue = vec![
        Stmt::DeclShared {
            name: DUMMY_SHARED.into(),
            elem: DType::F32,
            len,
        },
        // Keep the allocation alive (paper: "a simple write command ...
        // so that the compiler does not remove the allocation").
        Stmt::store(
            DUMMY_SHARED,
            Expr::Builtin(Builtin::ThreadIdxX).rem(Expr::int(len as i64)),
            Expr::Float(0.0),
        ),
    ];
    prologue.extend(out.body);
    out.body = prologue;
    Some(out)
}

/// Whether a `threadIdx` coefficient of `p` can actually vary within a
/// block: a non-zero coefficient is harmless when that block dimension is
/// known to be 1 (the builtin is constant 0 for every thread).
fn tid_dependent(p: &Poly, env: &AffineEnv) -> bool {
    (0u8..3).any(|d| {
        p.coeff(&Sym::ThreadIdx(d)) != 0
            && env
                .block_dim
                .map(|b| [b.0, b.1, b.2][d as usize] != 1)
                .unwrap_or(true)
    })
}

/// Prove that the integer predicate `c * i + k < 0` — where
/// `i = blockIdx.x * blockDim + threadIdx.x` ranges over the launched
/// linear thread ids — takes the *same* truth value for every thread of
/// any one block. The predicate is a prefix (`c > 0`) or suffix (`c < 0`)
/// of the id range; it is block-uniform exactly when the cut point lands
/// on a block boundary or outside the launched range altogether.
fn cut_on_block_boundary(c: i64, k: i64, block_dim: i64, grid_dim: Option<i64>) -> bool {
    let total = grid_dim.map(|g| g.saturating_mul(block_dim));
    if c > 0 {
        // True for i < ceil(-k / c).
        let t = (-k).div_euclid(c) + i64::from((-k).rem_euclid(c) != 0);
        t <= 0 || t % block_dim == 0 || total.map(|n| t >= n).unwrap_or(false)
    } else {
        // c < 0: true for i >= floor(k / -c) + 1.
        let s = k.div_euclid(-c) + 1;
        s <= 0 || s % block_dim == 0 || total.map(|n| s >= n).unwrap_or(false)
    }
}

/// Prove a comparison guard block-uniform. `lhs op rhs` is normalized to
/// `D < 0` with `D = c_t·threadIdx.x + c_b·blockIdx.x + K`; when
/// `c_b == c_t · blockDim.x` the guard depends on the thread only through
/// its linear id (the ubiquitous `i < N` bounds check), and uniformity
/// reduces to the cut point landing on a block boundary — e.g. atax's
/// `i < NX` is uniform exactly when `NX % blockDim.x == 0`.
fn cmp_block_uniform(op: BinOp, lhs: &Expr, rhs: &Expr, env: &AffineEnv) -> bool {
    let diff = Expr::Binary(BinOp::Sub, Box::new(lhs.clone()), Box::new(rhs.clone()));
    let Some(d) = eval_poly(&diff, env) else {
        return false; // non-affine: conservatively divergent
    };
    if !tid_dependent(&d, env) {
        return true; // value identical for all threads of a block
    }
    if matches!(op, BinOp::Eq | BinOp::Ne) {
        return false; // tid-dependent equality: divergent in general
    }
    // Only `threadIdx.x` and `blockIdx.x` may carry the tid dependence;
    // any other symbol (scalar vars, higher dims) has an unknown range.
    let Some(block) = env.block_dim else {
        return false;
    };
    let b = block.0.max(1) as i64;
    for (sym, _) in d.terms.iter() {
        match sym {
            Sym::ThreadIdx(0) | Sym::BlockIdx(0) => {}
            Sym::ThreadIdx(dim) if block_dim_is_one(env, *dim) => {}
            Sym::BlockIdx(dim) if grid_dim_is_one(env, *dim) => {}
            _ => return false,
        }
    }
    let c_t = d.coeff(&Sym::ThreadIdx(0));
    if d.coeff(&Sym::BlockIdx(0)) != c_t.saturating_mul(b) {
        return false; // not a function of the linear thread id
    }
    // Normalize `lhs op rhs` (i.e. `D' := lhs - rhs`) to `c·i + k < 0`.
    let (c, k) = match op {
        BinOp::Lt => (c_t, d.c0),
        BinOp::Le => (c_t, d.c0 - 1),
        BinOp::Gt => (-c_t, -d.c0),
        BinOp::Ge => (-c_t, -d.c0 - 1),
        _ => return false,
    };
    let grid = env.grid_dim.map(|g| g.0.max(1) as i64);
    cut_on_block_boundary(c, k, b, grid)
}

fn block_dim_is_one(env: &AffineEnv, dim: u8) -> bool {
    env.block_dim
        .map(|b| [b.0, b.1, b.2][dim as usize % 3] == 1)
        .unwrap_or(false)
}

fn grid_dim_is_one(env: &AffineEnv, dim: u8) -> bool {
    env.grid_dim
        .map(|g| [g.0, g.1, g.2][dim as usize % 3] == 1)
        .unwrap_or(false)
}

/// Whether every thread of any one block takes the same branch on `cond`.
///
/// Barrier legality hinges on this: splicing `__syncthreads()` under a
/// guard that only *some* threads of a block satisfy deadlocks on real
/// hardware (CUDA C++ §B.6: barriers must be reached by all threads of
/// the block or by none). Conservative: `false` whenever uniformity
/// cannot be proven.
pub fn guard_block_uniform(cond: &Expr, env: &AffineEnv) -> bool {
    match cond {
        Expr::Binary(BinOp::And | BinOp::Or, a, b) => {
            guard_block_uniform(a, env) && guard_block_uniform(b, env)
        }
        Expr::Unary(UnOp::Not, a) => guard_block_uniform(a, env),
        Expr::Binary(
            op @ (BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne),
            a,
            b,
        ) => cmp_block_uniform(*op, a, b, env),
        other => eval_poly(other, env)
            .map(|p| !tid_dependent(&p, env))
            .unwrap_or(false),
    }
}

/// Loops that warp-level throttling may legally split: *outermost* loops
/// (splitting a loop nested inside another split loop would interleave
/// barrier sites, which `__syncthreads` arrival counting cannot keep
/// apart — on real hardware as much as here) whose bodies contain no
/// `__syncthreads()` and which are not nested under a potentially
/// thread-divergent conditional (the spliced barriers must be reached by
/// every thread of the block).
///
/// Without launch information, guards over the linear thread id (e.g.
/// `i < N` with `i = blockIdx.x * blockDim.x + threadIdx.x`) cannot be
/// proven block-uniform, so this entry point conservatively rejects
/// them; use [`eligible_loops_for`] when the block shape is known.
pub fn eligible_loops(kernel: &Kernel) -> Vec<usize> {
    eligible_impl(kernel, AffineEnv::default())
}

/// [`eligible_loops`] with a known launch shape, enabling the
/// block-uniformity proof for guards over the linear thread id (`i < N`
/// is uniform when `N` is a multiple of `blockDim.x`). `grid` sharpens
/// the proof further (cuts beyond the launched range are uniform) but
/// may be `None`.
pub fn eligible_loops_for(
    kernel: &Kernel,
    block: (u32, u32, u32),
    grid: Option<(u32, u32, u32)>,
) -> Vec<usize> {
    let mut env = AffineEnv::with_launch(block, grid.unwrap_or((1, 1, 1)));
    env.grid_dim = grid;
    eligible_impl(kernel, env)
}

fn eligible_impl(kernel: &Kernel, mut env: AffineEnv) -> Vec<usize> {
    fn assigned_vars(stmts: &[Stmt]) -> Vec<String> {
        let mut out = Vec::new();
        catt_ir::visit::walk_stmts(stmts, &mut |s| {
            if let Stmt::Assign {
                lhs: LValue::Var(n),
                ..
            } = s
            {
                out.push(n.clone());
            }
        });
        out
    }
    fn go(
        stmts: &[Stmt],
        counter: &mut usize,
        depth: u32,
        divergent: bool,
        env: &mut AffineEnv,
        out: &mut Vec<usize>,
    ) {
        for s in stmts {
            match s {
                Stmt::For { .. } | Stmt::While { .. } => {
                    let (iter_var, body) = match s {
                        Stmt::For { var, body, .. } => (Some(var.as_str()), body),
                        Stmt::While { body, .. } => (None, body),
                        _ => continue,
                    };
                    let id = *counter;
                    *counter += 1;
                    if depth == 0 && !divergent {
                        let mut has_barrier = false;
                        catt_ir::visit::walk_stmts(body, &mut |x| {
                            has_barrier |= matches!(x, Stmt::SyncThreads);
                        });
                        if !has_barrier {
                            out.push(id);
                        }
                    }
                    let mut inner = env.clone();
                    if let Some(v) = iter_var {
                        inner.poison(v);
                    }
                    for v in assigned_vars(body) {
                        inner.poison(&v);
                    }
                    go(body, counter, depth + 1, divergent, &mut inner, out);
                    for v in assigned_vars(body) {
                        env.poison(&v);
                    }
                    if let Some(v) = iter_var {
                        env.poison(v);
                    }
                }
                Stmt::If { cond, then, els } => {
                    let div = divergent || !guard_block_uniform(cond, env);
                    go(then, counter, depth, div, env, out);
                    go(els, counter, depth, div, env, out);
                    for v in assigned_vars(then).iter().chain(assigned_vars(els).iter()) {
                        env.poison(v);
                    }
                }
                Stmt::DeclScalar { name, init, .. } => match init {
                    Some(e) => match eval_poly(e, env) {
                        Some(p) => env.bind(name, p),
                        None => env.poison(name),
                    },
                    None => env.poison(name),
                },
                Stmt::Assign {
                    lhs: LValue::Var(name),
                    rhs,
                    ..
                } => {
                    if depth == 0 {
                        match eval_poly(rhs, env) {
                            Some(p) => env.bind(name, p),
                            None => env.poison(name),
                        }
                    } else {
                        env.poison(name);
                    }
                }
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    go(&kernel.body, &mut 0, 0, false, &mut env, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use catt_frontend::parse_kernel;
    use catt_ir::printer::kernel_to_string;

    fn atax() -> Kernel {
        parse_kernel(
            "#define NX 40960
             __global__ void atax1(float *A, float *B, float *tmp) {
                 int i = blockIdx.x * blockDim.x + threadIdx.x;
                 if (i < NX) {
                     for (int j = 0; j < NX; j++) {
                         tmp[i] += A[i * NX + j] * B[j];
                     }
                 }
             }",
        )
        .unwrap()
    }

    /// The transform reproduces the paper's Fig. 4 for N = 2 on an
    /// 8-warp block: two guarded loop copies, two barriers.
    #[test]
    fn warp_throttle_matches_fig4() {
        let k = warp_throttle(&atax(), 0, 2, 8).unwrap();
        let src = kernel_to_string(&k);
        assert!(src.contains("threadIdx.x / 32 >= 0 && threadIdx.x / 32 < 4"));
        assert!(src.contains("threadIdx.x / 32 >= 4 && threadIdx.x / 32 < 8"));
        assert_eq!(src.matches("__syncthreads();").count(), 2);
        assert_eq!(src.matches("for (int j = 0; j < 40960; j++)").count(), 2);
        // Still parses (round-trip through the frontend).
        let reparsed = parse_kernel(&src).unwrap();
        assert_eq!(reparsed, k);
    }

    #[test]
    fn warp_throttle_n4_makes_four_groups() {
        let k = warp_throttle(&atax(), 0, 4, 8).unwrap();
        let src = kernel_to_string(&k);
        assert_eq!(src.matches("__syncthreads();").count(), 4);
        for g in 0..4 {
            let lo = g * 2;
            let hi = lo + 2;
            assert!(
                src.contains(&format!(
                    "threadIdx.x / 32 >= {lo} && threadIdx.x / 32 < {hi}"
                )),
                "missing group {g}"
            );
        }
    }

    #[test]
    fn warp_throttle_rejects_bad_factors() {
        assert!(warp_throttle(&atax(), 0, 1, 8).is_none(), "n=1 is a no-op");
        assert!(warp_throttle(&atax(), 0, 3, 8).is_none(), "3 ∤ 8");
        assert!(warp_throttle(&atax(), 0, 16, 8).is_none(), "n > warps");
        assert!(warp_throttle(&atax(), 7, 2, 8).is_none(), "no loop 7");
    }

    #[test]
    fn warp_throttle_targets_correct_nested_loop() {
        let k = parse_kernel(
            "__global__ void k(float *A, int n) {
                 int i = blockIdx.x * blockDim.x + threadIdx.x;
                 for (int a = 0; a < 4; a++) {
                     A[i + a] = 0.0f;
                 }
                 for (int b = 0; b < n; b++) {
                     A[i * n + b] += 1.0f;
                 }
             }",
        )
        .unwrap();
        let t = warp_throttle(&k, 1, 2, 8).unwrap();
        let src = kernel_to_string(&t);
        // Loop 0 (over a) untouched, loop 1 (over b) split.
        assert_eq!(src.matches("for (int a = 0").count(), 1);
        assert_eq!(src.matches("for (int b = 0").count(), 2);
    }

    #[test]
    fn eligible_loops_rejects_divergent_guards() {
        // `threadIdx.x % 2 == 0` diverges within every warp, let alone the
        // block: the loop under it must never be warp-split.
        let k = parse_kernel(
            "__global__ void k(float *A) {
                 int i = blockIdx.x * blockDim.x + threadIdx.x;
                 if (threadIdx.x % 2 == 0) {
                     for (int j = 0; j < 64; j++) {
                         A[i] += 1.0f;
                     }
                 }
             }",
        )
        .unwrap();
        assert!(eligible_loops_for(&k, (256, 1, 1), None).is_empty());
        assert!(eligible_loops(&k).is_empty());
    }

    #[test]
    fn uniform_bounds_check_keeps_loop_eligible() {
        // atax's `i < 40960` guard: 40960 is a multiple of blockDim 256,
        // so every block is entirely inside or entirely outside the bound.
        let k = atax();
        assert_eq!(eligible_loops_for(&k, (256, 1, 1), None), vec![0]);
        // Without launch information the proof is unavailable.
        assert!(eligible_loops(&k).is_empty());
    }

    #[test]
    fn straddling_bounds_check_is_divergent_unless_grid_excludes_it() {
        let k = parse_kernel(
            "#define NX 40000
             __global__ void k(float *A, float *tmp) {
                 int i = blockIdx.x * blockDim.x + threadIdx.x;
                 if (i < NX) {
                     for (int j = 0; j < NX; j++) {
                         tmp[i] += A[i + j];
                     }
                 }
             }",
        )
        .unwrap();
        // 40000 % 256 != 0: the cut falls inside block 156.
        assert!(eligible_loops_for(&k, (256, 1, 1), None).is_empty());
        // A 100-block grid never reaches the cut (25600 < 40000): the
        // guard is true for every launched thread, hence uniform.
        assert_eq!(
            eligible_loops_for(&k, (256, 1, 1), Some((100, 1, 1))),
            vec![0]
        );
    }

    #[test]
    fn barrier_loops_remain_ineligible() {
        let k = parse_kernel(
            "__global__ void k(float *A) {
                 __shared__ float s[32];
                 for (int j = 0; j < 64; j++) {
                     s[threadIdx.x % 32] = A[j];
                     __syncthreads();
                     A[j] = s[0];
                 }
             }",
        )
        .unwrap();
        assert!(eligible_loops_for(&k, (256, 1, 1), None).is_empty());
    }

    /// Fig. 5: 96 KB carve-out, target 2 TBs → 48 KB dummy = 12288 floats.
    #[test]
    fn tb_throttle_matches_fig5() {
        let k = tb_throttle(&atax(), 2, 96 * 1024, 0).unwrap();
        assert_eq!(k.shared_mem_bytes(), 48 * 1024);
        let src = kernel_to_string(&k);
        assert!(src.contains("__shared__ float catt_dummy_shared[12288];"));
        assert!(src.contains("catt_dummy_shared[threadIdx.x % 12288] = 0.0f;"));
        // Round-trips.
        assert_eq!(parse_kernel(&src).unwrap(), k);
    }

    #[test]
    fn tb_throttle_accounts_for_existing_smem() {
        let k = parse_kernel(
            "__global__ void k(float *A) {
                 __shared__ float buf[1024];
                 buf[threadIdx.x % 1024] = 0.0f;
                 A[threadIdx.x] = buf[0];
             }",
        )
        .unwrap();
        // Existing 4 KB; target 4 TBs on 96 KB → 24 KB per TB → 20 KB dummy.
        let t = tb_throttle(&k, 4, 96 * 1024, 4 * 1024).unwrap();
        assert_eq!(t.shared_mem_bytes(), 24 * 1024);
    }

    #[test]
    fn tb_throttle_rejects_unreachable_targets() {
        assert!(tb_throttle(&atax(), 0, 96 * 1024, 0).is_none());
        // Target 4 TBs but existing smem already implies ≤ 4.
        assert!(tb_throttle(&atax(), 4, 96 * 1024, 32 * 1024).is_none());
    }

    #[test]
    fn transformed_kernel_preserves_semantics_in_sim() {
        use catt_ir::LaunchConfig;
        use catt_sim::{Arg, GlobalMem, Gpu, GpuConfig};
        let n = 128usize;
        let src = format!(
            "#define N {n}
             __global__ void mv(float *A, float *B, float *tmp) {{
                 int i = blockIdx.x * blockDim.x + threadIdx.x;
                 if (i < N) {{
                     for (int j = 0; j < N; j++) {{
                         tmp[i] += A[i * N + j] * B[j];
                     }}
                 }}
             }}"
        );
        let base = parse_kernel(&src).unwrap();
        let variants = [
            base.clone(),
            warp_throttle(&base, 0, 2, 4).unwrap(),
            warp_throttle(&base, 0, 4, 4).unwrap(),
            tb_throttle(&base, 1, 96 * 1024, 0).unwrap(),
        ];
        let mut reference: Option<Vec<f32>> = None;
        for k in &variants {
            let mut mem = GlobalMem::new();
            let a = mem.alloc_f32(&(0..n * n).map(|v| (v % 13) as f32).collect::<Vec<_>>());
            let b = mem.alloc_f32(&(0..n).map(|v| (v % 7) as f32).collect::<Vec<_>>());
            let tmp = mem.alloc_zeroed(n as u32);
            let mut gpu = Gpu::new(GpuConfig::titan_v_1sm());
            gpu.launch(
                k,
                LaunchConfig::d1(1, 128),
                &[Arg::Buf(a), Arg::Buf(b), Arg::Buf(tmp)],
                &mut mem,
            )
            .unwrap();
            let out = mem.read_f32(tmp);
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(&out, r, "variant `{}` diverged", k.name),
            }
        }
    }

    #[test]
    fn throttling_a_divergent_loop_yields_a_divergent_barrier() {
        // The legality gap `eligible_loops` closes: a loop under a guard
        // that cuts inside a block (40 is not a multiple of blockDim 64)
        // must not be warp-throttled — the spliced barriers land in
        // thread-divergent control flow. The eligibility analysis rejects
        // the loop; forcing the transform anyway (as the differential
        // fuzzer's legality-unchecked mode does) produces a kernel the
        // sanitizer independently convicts of barrier divergence, while
        // the default arrival-count semantics mask the bug entirely.
        use catt_ir::LaunchConfig;
        use catt_sim::{Arg, GlobalMem, Gpu, GpuConfig, SanitizerKind, SimError};
        let src = "#define N 40
             __global__ void divloop(float *a, float *tmp) {
                 int i = blockIdx.x * blockDim.x + threadIdx.x;
                 if (i < N) {
                     for (int j = 0; j < 64; j++) {
                         tmp[i] += a[i * 64 + j];
                     }
                 }
             }";
        let base = parse_kernel(src).unwrap();
        assert_eq!(
            eligible_loops_for(&base, (64, 1, 1), Some((1, 1, 1))),
            Vec::<usize>::new(),
            "the divergently guarded loop must be rejected"
        );
        // `warp_throttle` itself applies blindly (pre-order loop 0), so
        // the illegal variant can be constructed for testing.
        let bad = warp_throttle(&base, 0, 2, 2).unwrap();
        let run = |k: &catt_ir::Kernel, sanitize: bool| {
            let mut mem = GlobalMem::new();
            let a = mem.alloc_f32(&vec![1.0; 40 * 64]);
            let tmp = mem.alloc_zeroed(64);
            let mut config = GpuConfig::titan_v_1sm();
            config.sanitize = Some(sanitize);
            let res = Gpu::new(config).launch(
                k,
                LaunchConfig::d1(1, 64),
                &[Arg::Buf(a), Arg::Buf(tmp)],
                &mut mem,
            );
            res.map(|_| mem.read_f32(tmp))
        };
        // The original kernel is sanitize-clean; the throttled variant
        // completes unsanitized (masked) with the right answer, but the
        // sanitizer reports the divergent barrier.
        let clean = run(&base, true).unwrap();
        assert_eq!(
            run(&bad, false).unwrap(),
            clean,
            "masked but numerically ok"
        );
        match run(&bad, true).unwrap_err() {
            SimError::Sanitizer(report) => {
                assert_eq!(report.kind, SanitizerKind::BarrierDivergence, "{report}");
                assert_eq!(report.kernel, "divloop");
            }
            other => panic!("expected a sanitizer report, got {other}"),
        }
    }

    /// Property: the legality analysis and the transform's `rewrite`
    /// agree on the blind pre-order numbering of `for`/`while` loops, for
    /// randomly nested `for`/`while`/`if` bodies. Every loop's bound is a
    /// unique marker constant assigned in source (= pre-order) creation
    /// order, so the loop that `warp_throttle` actually splits identifies
    /// itself in the printed output.
    #[test]
    fn eligible_loops_and_rewrite_agree_on_preorder_numbering() {
        use catt_prng::Rng;

        struct Gen {
            rng: Rng,
            src: String,
            /// Per loop, by pre-order id: the ids of its enclosing loops.
            ancestors: Vec<Vec<usize>>,
            /// Per loop: whether any enclosing `if` guard is divergent.
            under_divergent: Vec<bool>,
            next_while: usize,
        }

        // Markers are 4-digit and contiguous from 1000, so no marker's
        // decimal text is a prefix of another's and `"< {m}"` matches
        // exactly the loops carrying marker `m`.
        fn marker(id: usize) -> usize {
            1000 + id
        }

        impl Gen {
            fn items(&mut self, depth: usize, loops: &[usize], divergent: bool) {
                for _ in 0..self.rng.range_usize(1, 4) {
                    // Past depth 3 only leaves, to bound the tree.
                    match self.rng.range_u32(0, if depth >= 3 { 1 } else { 4 }) {
                        0 => self.src.push_str("A[i] += 1.0f;\n"),
                        1 => {
                            let id = self.ancestors.len();
                            self.ancestors.push(loops.to_vec());
                            self.under_divergent.push(divergent);
                            let m = marker(id);
                            self.src.push_str(&format!(
                                "for (int j{id} = 0; j{id} < {m}; j{id}++) {{\n"
                            ));
                            let mut inner = loops.to_vec();
                            inner.push(id);
                            self.items(depth + 1, &inner, divergent);
                            self.src.push_str("}\n");
                        }
                        2 => {
                            let id = self.ancestors.len();
                            self.ancestors.push(loops.to_vec());
                            self.under_divergent.push(divergent);
                            let w = self.next_while;
                            self.next_while += 1;
                            let m = marker(id);
                            self.src
                                .push_str(&format!("int w{w} = 0;\nwhile (w{w} < {m}) {{\n"));
                            let mut inner = loops.to_vec();
                            inner.push(id);
                            self.items(depth + 1, &inner, divergent);
                            self.src.push_str(&format!("w{w} = w{w} + 1;\n}}\n"));
                        }
                        3 => {
                            let div = self.rng.bool(0.5);
                            // `i < 256` is always true for this launch
                            // (2 blocks × 128 threads), hence uniform.
                            let guard = if div {
                                "threadIdx.x % 2 == 0"
                            } else {
                                "i < 256"
                            };
                            self.src.push_str(&format!("if ({guard}) {{\n"));
                            self.items(depth + 1, loops, divergent || div);
                            self.src.push_str("}\n");
                        }
                        _ => unreachable!(),
                    }
                }
            }
        }

        let mut rng = Rng::from_tag("transform-numbering-property");
        for _ in 0..40 {
            let mut g = Gen {
                rng: Rng::seed(rng.next_u64()),
                src: String::new(),
                ancestors: Vec::new(),
                under_divergent: Vec::new(),
                next_while: 0,
            };
            g.src.push_str(
                "__global__ void p(float *A) {\nint i = blockIdx.x * blockDim.x + threadIdx.x;\n",
            );
            g.items(0, &[], false);
            // Guarantee at least one loop so every kernel exercises the
            // transform.
            {
                let id = g.ancestors.len();
                g.ancestors.push(Vec::new());
                g.under_divergent.push(false);
                let m = marker(id);
                g.src.push_str(&format!(
                    "for (int j{id} = 0; j{id} < {m}; j{id}++) {{\nA[i] += 1.0f;\n}}\n"
                ));
            }
            g.src.push_str("A[i] = 0.0f;\n}\n");
            let k = parse_kernel(&g.src).unwrap();
            let count = g.ancestors.len();

            for id in 0..count {
                let t = warp_throttle(&k, id, 2, 4)
                    .unwrap_or_else(|| panic!("loop {id} of {count} not found:\n{}", g.src));
                let out = kernel_to_string(&t);
                for m_id in 0..count {
                    // Splitting loop `id` duplicates exactly that loop
                    // and everything nested inside it.
                    let expect = if m_id == id || g.ancestors[m_id].contains(&id) {
                        2
                    } else {
                        1
                    };
                    let pat = format!("< {}", marker(m_id));
                    assert_eq!(
                        out.matches(&pat).count(),
                        expect,
                        "loop {m_id} after splitting loop {id}:\n{out}"
                    );
                }
            }
            // One past the last loop: the rewrite finds nothing.
            assert!(warp_throttle(&k, count, 2, 4).is_none());

            // The legality analysis numbers loops identically: every id
            // it reports is a real pre-order id, and none of them sits
            // under a divergent guard.
            for id in eligible_loops_for(&k, (128, 1, 1), Some((2, 1, 1))) {
                assert!(id < count, "eligible id {id} out of range {count}");
                assert!(
                    !g.under_divergent[id],
                    "divergently guarded loop {id} reported eligible:\n{}",
                    g.src
                );
            }
        }
    }

    #[test]
    fn tb_throttle_rejects_zero_length_dummy() {
        // A carve-out smaller than one f32 word rounds the dummy array
        // to length 0 — no allocation, no throttling effect.
        assert!(tb_throttle(&atax(), 1, 3, 0).is_none());
        // Same rounding when existing shared memory leaves < 4 bytes of
        // headroom: per_tb − current_smem = 1.
        assert!(tb_throttle(&atax(), 1, 1024, 1023).is_none());
    }

    #[test]
    fn tb_throttle_keep_alive_store_stays_in_bounds_under_sanitizer() {
        // blockDim.x (64) far exceeds the dummy length (16 B / 4 = 4
        // words): the keep-alive store wraps with `threadIdx.x % len`,
        // so a sanitized run must stay clean and bit-identical.
        use catt_ir::LaunchConfig;
        use catt_sim::{Arg, GlobalMem, Gpu, GpuConfig};
        let base = parse_kernel(
            "__global__ void k(float *A) {
                 int i = blockIdx.x * blockDim.x + threadIdx.x;
                 A[i] = A[i] + 2.0f;
             }",
        )
        .unwrap();
        let t = tb_throttle(&base, 1, 16, 0).unwrap();
        assert_eq!(t.shared_mem_bytes(), 16);
        let src = kernel_to_string(&t);
        assert!(src.contains("__shared__ float catt_dummy_shared[4];"));
        assert!(src.contains("catt_dummy_shared[threadIdx.x % 4] = 0.0f;"));
        let run = |k: &Kernel| {
            let mut mem = GlobalMem::new();
            let a = mem.alloc_f32(&(0..64).map(|v| v as f32).collect::<Vec<_>>());
            let mut config = GpuConfig::titan_v_1sm()
                .with_smem_for(16)
                .expect("16 B fits every carve-out option");
            config.sanitize = Some(true);
            Gpu::new(config)
                .launch(k, LaunchConfig::d1(1, 64), &[Arg::Buf(a)], &mut mem)
                .expect("sanitized run must be clean");
            mem.read_f32(a)
        };
        assert_eq!(run(&t), run(&base), "keep-alive store changed results");
    }
}
