//! Source-to-source throttling transformations (paper §4.3).

use catt_ir::expr::{Builtin, Expr};
use catt_ir::kernel::Kernel;
use catt_ir::stmt::Stmt;
use catt_ir::types::DType;

/// Warp size used in the generated guards (`WS` in paper Fig. 4).
pub const WARP_SIZE: i64 = 32;

/// Name of the dummy shared array inserted by TB-level throttling
/// (paper Fig. 5 calls it `dummy_shared`).
pub const DUMMY_SHARED: &str = "catt_dummy_shared";

/// Apply **warp-level throttling** (paper Fig. 4) to the loop with
/// pre-order index `loop_id`: replace it with `n` copies, each guarded so
/// that only one group of `#Warps_TB / n` warps executes it, separated by
/// `__syncthreads()` so the groups run one after another.
///
/// Returns the transformed kernel, or `None` when `loop_id` does not
/// exist, `n` does not evenly divide the block's warps, or `n <= 1`.
pub fn warp_throttle(kernel: &Kernel, loop_id: usize, n: u32, warps_per_tb: u32) -> Option<Kernel> {
    if n <= 1 || !warps_per_tb.is_multiple_of(n) || n > warps_per_tb {
        return None;
    }
    let group = (warps_per_tb / n) as i64;
    let mut counter = 0usize;
    let mut found = false;
    let mut out = kernel.clone();
    out.body = rewrite(&out.body, &mut counter, loop_id, &mut found, &|loop_stmt| {
        let mut seq = Vec::with_capacity(2 * n as usize);
        for k in 0..n as i64 {
            // if (threadIdx.x / WS >= k*g && threadIdx.x / WS < (k+1)*g)
            let wid = Expr::Builtin(Builtin::ThreadIdxX).div(Expr::int(WARP_SIZE));
            let guard = wid
                .clone()
                .ge(Expr::int(k * group))
                .and(wid.lt(Expr::int((k + 1) * group)));
            seq.push(Stmt::if_then(guard, vec![loop_stmt.clone()]));
            seq.push(Stmt::SyncThreads);
        }
        seq
    });
    found.then_some(out)
}

/// Replace the `loop_id`-th loop (pre-order over `for`/`while`) using
/// `make`, which maps the loop statement to its replacement sequence.
fn rewrite(
    stmts: &[Stmt],
    counter: &mut usize,
    target: usize,
    found: &mut bool,
    make: &dyn Fn(&Stmt) -> Vec<Stmt>,
) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            Stmt::For { .. } | Stmt::While { .. } => {
                let id = *counter;
                *counter += 1;
                if id == target {
                    *found = true;
                    out.extend(make(s));
                } else {
                    // Recurse into the body for nested targets.
                    match s {
                        Stmt::For {
                            var,
                            decl,
                            init,
                            cond_op,
                            bound,
                            step,
                            body,
                        } => out.push(Stmt::For {
                            var: var.clone(),
                            decl: *decl,
                            init: init.clone(),
                            cond_op: *cond_op,
                            bound: bound.clone(),
                            step: step.clone(),
                            body: rewrite(body, counter, target, found, make),
                        }),
                        Stmt::While { cond, body } => out.push(Stmt::While {
                            cond: cond.clone(),
                            body: rewrite(body, counter, target, found, make),
                        }),
                        _ => unreachable!(),
                    }
                }
            }
            Stmt::If { cond, then, els } => out.push(Stmt::If {
                cond: cond.clone(),
                then: rewrite(then, counter, target, found, make),
                els: rewrite(els, counter, target, found, make),
            }),
            other => out.push(other.clone()),
        }
    }
    out
}

/// Apply **TB-level throttling** (paper Fig. 5): insert a dummy
/// `__shared__` array sized so that only `target_tbs` blocks stay resident
/// per SM, plus a store so the allocation is not dead.
///
/// `carveout_bytes` is the SM's shared-memory carve-out and
/// `current_smem` the kernel's existing static shared usage. Returns
/// `None` when `target_tbs` is 0 or no dummy size can reach the target
/// (e.g. it already holds).
pub fn tb_throttle(
    kernel: &Kernel,
    target_tbs: u32,
    carveout_bytes: u32,
    current_smem: u32,
) -> Option<Kernel> {
    if target_tbs == 0 {
        return None;
    }
    // Want: carveout / smem' == target  ⇒  smem' = carveout / target
    // (integer floor keeps exactly `target` blocks resident).
    let per_tb = carveout_bytes / target_tbs;
    if per_tb <= current_smem {
        return None; // cannot reach the target by adding shared memory
    }
    let dummy_bytes = per_tb - current_smem;
    let len = dummy_bytes / 4;
    if len == 0 {
        return None;
    }
    let mut out = kernel.clone();
    let mut prologue = vec![
        Stmt::DeclShared {
            name: DUMMY_SHARED.into(),
            elem: DType::F32,
            len,
        },
        // Keep the allocation alive (paper: "a simple write command ...
        // so that the compiler does not remove the allocation").
        Stmt::store(
            DUMMY_SHARED,
            Expr::Builtin(Builtin::ThreadIdxX).rem(Expr::int(len as i64)),
            Expr::Float(0.0),
        ),
    ];
    prologue.extend(out.body);
    out.body = prologue;
    Some(out)
}

/// Loops that warp-level throttling may legally split: *outermost* loops
/// (splitting a loop nested inside another split loop would interleave
/// barrier sites, which `__syncthreads` arrival counting cannot keep
/// apart — on real hardware as much as here) whose bodies contain no
/// `__syncthreads()`.
pub fn eligible_loops(kernel: &Kernel) -> Vec<usize> {
    fn go(stmts: &[Stmt], counter: &mut usize, depth: u32, out: &mut Vec<usize>) {
        for s in stmts {
            match s {
                Stmt::For { body, .. } | Stmt::While { body, .. } => {
                    let id = *counter;
                    *counter += 1;
                    if depth == 0 {
                        let mut has_barrier = false;
                        catt_ir::visit::walk_stmts(body, &mut |x| {
                            has_barrier |= matches!(x, Stmt::SyncThreads);
                        });
                        if !has_barrier {
                            out.push(id);
                        }
                    }
                    go(body, counter, depth + 1, out);
                }
                Stmt::If { then, els, .. } => {
                    go(then, counter, depth, out);
                    go(els, counter, depth, out);
                }
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    go(&kernel.body, &mut 0, 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use catt_frontend::parse_kernel;
    use catt_ir::printer::kernel_to_string;

    fn atax() -> Kernel {
        parse_kernel(
            "#define NX 40960
             __global__ void atax1(float *A, float *B, float *tmp) {
                 int i = blockIdx.x * blockDim.x + threadIdx.x;
                 if (i < NX) {
                     for (int j = 0; j < NX; j++) {
                         tmp[i] += A[i * NX + j] * B[j];
                     }
                 }
             }",
        )
        .unwrap()
    }

    /// The transform reproduces the paper's Fig. 4 for N = 2 on an
    /// 8-warp block: two guarded loop copies, two barriers.
    #[test]
    fn warp_throttle_matches_fig4() {
        let k = warp_throttle(&atax(), 0, 2, 8).unwrap();
        let src = kernel_to_string(&k);
        assert!(src.contains("threadIdx.x / 32 >= 0 && threadIdx.x / 32 < 4"));
        assert!(src.contains("threadIdx.x / 32 >= 4 && threadIdx.x / 32 < 8"));
        assert_eq!(src.matches("__syncthreads();").count(), 2);
        assert_eq!(src.matches("for (int j = 0; j < 40960; j++)").count(), 2);
        // Still parses (round-trip through the frontend).
        let reparsed = parse_kernel(&src).unwrap();
        assert_eq!(reparsed, k);
    }

    #[test]
    fn warp_throttle_n4_makes_four_groups() {
        let k = warp_throttle(&atax(), 0, 4, 8).unwrap();
        let src = kernel_to_string(&k);
        assert_eq!(src.matches("__syncthreads();").count(), 4);
        for g in 0..4 {
            let lo = g * 2;
            let hi = lo + 2;
            assert!(
                src.contains(&format!(
                    "threadIdx.x / 32 >= {lo} && threadIdx.x / 32 < {hi}"
                )),
                "missing group {g}"
            );
        }
    }

    #[test]
    fn warp_throttle_rejects_bad_factors() {
        assert!(warp_throttle(&atax(), 0, 1, 8).is_none(), "n=1 is a no-op");
        assert!(warp_throttle(&atax(), 0, 3, 8).is_none(), "3 ∤ 8");
        assert!(warp_throttle(&atax(), 0, 16, 8).is_none(), "n > warps");
        assert!(warp_throttle(&atax(), 7, 2, 8).is_none(), "no loop 7");
    }

    #[test]
    fn warp_throttle_targets_correct_nested_loop() {
        let k = parse_kernel(
            "__global__ void k(float *A, int n) {
                 int i = blockIdx.x * blockDim.x + threadIdx.x;
                 for (int a = 0; a < 4; a++) {
                     A[i + a] = 0.0f;
                 }
                 for (int b = 0; b < n; b++) {
                     A[i * n + b] += 1.0f;
                 }
             }",
        )
        .unwrap();
        let t = warp_throttle(&k, 1, 2, 8).unwrap();
        let src = kernel_to_string(&t);
        // Loop 0 (over a) untouched, loop 1 (over b) split.
        assert_eq!(src.matches("for (int a = 0").count(), 1);
        assert_eq!(src.matches("for (int b = 0").count(), 2);
    }

    /// Fig. 5: 96 KB carve-out, target 2 TBs → 48 KB dummy = 12288 floats.
    #[test]
    fn tb_throttle_matches_fig5() {
        let k = tb_throttle(&atax(), 2, 96 * 1024, 0).unwrap();
        assert_eq!(k.shared_mem_bytes(), 48 * 1024);
        let src = kernel_to_string(&k);
        assert!(src.contains("__shared__ float catt_dummy_shared[12288];"));
        assert!(src.contains("catt_dummy_shared[threadIdx.x % 12288] = 0.0f;"));
        // Round-trips.
        assert_eq!(parse_kernel(&src).unwrap(), k);
    }

    #[test]
    fn tb_throttle_accounts_for_existing_smem() {
        let k = parse_kernel(
            "__global__ void k(float *A) {
                 __shared__ float buf[1024];
                 buf[threadIdx.x % 1024] = 0.0f;
                 A[threadIdx.x] = buf[0];
             }",
        )
        .unwrap();
        // Existing 4 KB; target 4 TBs on 96 KB → 24 KB per TB → 20 KB dummy.
        let t = tb_throttle(&k, 4, 96 * 1024, 4 * 1024).unwrap();
        assert_eq!(t.shared_mem_bytes(), 24 * 1024);
    }

    #[test]
    fn tb_throttle_rejects_unreachable_targets() {
        assert!(tb_throttle(&atax(), 0, 96 * 1024, 0).is_none());
        // Target 4 TBs but existing smem already implies ≤ 4.
        assert!(tb_throttle(&atax(), 4, 96 * 1024, 32 * 1024).is_none());
    }

    #[test]
    fn transformed_kernel_preserves_semantics_in_sim() {
        use catt_ir::LaunchConfig;
        use catt_sim::{Arg, GlobalMem, Gpu, GpuConfig};
        let n = 128usize;
        let src = format!(
            "#define N {n}
             __global__ void mv(float *A, float *B, float *tmp) {{
                 int i = blockIdx.x * blockDim.x + threadIdx.x;
                 if (i < N) {{
                     for (int j = 0; j < N; j++) {{
                         tmp[i] += A[i * N + j] * B[j];
                     }}
                 }}
             }}"
        );
        let base = parse_kernel(&src).unwrap();
        let variants = [
            base.clone(),
            warp_throttle(&base, 0, 2, 4).unwrap(),
            warp_throttle(&base, 0, 4, 4).unwrap(),
            tb_throttle(&base, 1, 96 * 1024, 0).unwrap(),
        ];
        let mut reference: Option<Vec<f32>> = None;
        for k in &variants {
            let mut mem = GlobalMem::new();
            let a = mem.alloc_f32(&(0..n * n).map(|v| (v % 13) as f32).collect::<Vec<_>>());
            let b = mem.alloc_f32(&(0..n).map(|v| (v % 7) as f32).collect::<Vec<_>>());
            let tmp = mem.alloc_zeroed(n as u32);
            let mut gpu = Gpu::new(GpuConfig::titan_v_1sm());
            gpu.launch(
                k,
                LaunchConfig::d1(1, 128),
                &[Arg::Buf(a), Arg::Buf(b), Arg::Buf(tmp)],
                &mut mem,
            )
            .unwrap();
            let out = mem.read_f32(tmp);
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(&out, r, "variant `{}` diverged", k.name),
            }
        }
    }
}
