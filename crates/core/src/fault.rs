//! Fault injection — a chaos harness for the guard rails.
//!
//! A [`FaultPlan`] describes deliberate failures to inject into the
//! evaluation stack so that every degradation path (worker panic → job
//! error, fuel exhaustion → faulted candidate, corrupt cache line →
//! skip-with-count, failed transform → original-kernel fallback) can be
//! exercised end to end, both in integration tests and from CI.
//!
//! Plans come from the `CATT_FAULT_PLAN` environment variable, a
//! comma-separated list of directives:
//!
//! * `panic-job=N` — the N-th job (0-based, counted across the engine's
//!   lifetime) panics inside the worker pool;
//! * `fuel=C` — every simulation runs under a cycle budget of `C`
//!   (consumed by `catt_sim::GpuConfig::fuel_budget`, which reads the
//!   same variable);
//! * `corrupt-cache` — the persistent simcache writes one deliberately
//!   checksum-corrupted line (the first entry persisted), so the next
//!   warm run must skip exactly one entry;
//! * `delay-job=<ms>` — every job sleeps `<ms>` milliseconds before it
//!   simulates: deterministic latency injection, so deadline, watchdog,
//!   and circuit-breaker paths (`catt serve`) are testable without racing
//!   real simulation times;
//! * `fail-transform` — the pipeline's throttling transform reports
//!   failure for every kernel, forcing the multiversion fallback to the
//!   original code.
//!
//! Example: `CATT_FAULT_PLAN="panic-job=3,corrupt-cache"`.
//!
//! Unknown directives are ignored (forward compatibility); an empty or
//! unset variable is an inactive plan. Injection sites consult the plan
//! explicitly — nothing in this module installs global state.

/// A set of deliberate failures to inject. See the module docs for the
/// `CATT_FAULT_PLAN` syntax.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Panic inside the worker pool when the engine's lifetime job
    /// counter reaches this value (0-based).
    pub panic_at_job: Option<u64>,
    /// Cycle-fuel budget forced onto every simulation.
    pub fuel: Option<u64>,
    /// Corrupt the checksum of the first cache line persisted.
    pub corrupt_cache: bool,
    /// Milliseconds every job sleeps before simulating (deterministic
    /// latency injection for deadline/watchdog/breaker testing).
    pub delay_job_ms: Option<u64>,
    /// Make every kernel transform report failure.
    pub fail_transform: bool,
}

impl FaultPlan {
    /// The inactive plan (nothing injected).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether any fault is armed.
    pub fn is_active(&self) -> bool {
        *self != FaultPlan::none()
    }

    /// Parse a `CATT_FAULT_PLAN` directive string.
    pub fn parse(spec: &str) -> FaultPlan {
        let mut plan = FaultPlan::none();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if let Some(n) = entry.strip_prefix("panic-job=") {
                plan.panic_at_job = n.trim().parse().ok();
            } else if let Some(c) = entry.strip_prefix("fuel=") {
                plan.fuel = c.trim().parse().ok();
            } else if let Some(ms) = entry.strip_prefix("delay-job=") {
                plan.delay_job_ms = ms.trim().parse().ok();
            } else if entry == "corrupt-cache" {
                plan.corrupt_cache = true;
            } else if entry == "fail-transform" {
                plan.fail_transform = true;
            }
        }
        plan
    }

    /// The plan described by the `CATT_FAULT_PLAN` environment variable
    /// (inactive when unset or empty).
    pub fn from_env() -> FaultPlan {
        match std::env::var("CATT_FAULT_PLAN") {
            Ok(spec) => FaultPlan::parse(&spec),
            Err(_) => FaultPlan::none(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_directive() {
        let p =
            FaultPlan::parse("panic-job=3, fuel=5000, corrupt-cache, fail-transform, delay-job=25");
        assert_eq!(
            p,
            FaultPlan {
                panic_at_job: Some(3),
                fuel: Some(5000),
                corrupt_cache: true,
                fail_transform: true,
                delay_job_ms: Some(25),
            }
        );
        assert!(p.is_active());
    }

    #[test]
    fn delay_alone_is_active() {
        let p = FaultPlan::parse("delay-job=5");
        assert_eq!(p.delay_job_ms, Some(5));
        assert!(p.is_active());
    }

    #[test]
    fn empty_and_unknown_directives_are_inactive() {
        assert!(!FaultPlan::parse("").is_active());
        assert!(!FaultPlan::parse("frobnicate=9").is_active());
        assert!(FaultPlan::parse("corrupt-cache").corrupt_cache);
    }
}
