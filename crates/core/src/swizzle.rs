//! CTA-swizzle: remap block IDs to change the *order* in which thread
//! blocks touch memory, without changing what any block computes.
//!
//! Throttling (paper §4.3) reduces cache contention by running fewer
//! threads at once; swizzling attacks the same contention from the other
//! side, by making the blocks that *do* run concurrently share lines in
//! the L2. The pass rewrites every use of `blockIdx.x` / `blockIdx.y` to
//! a pair of prologue locals computed by a compile-time bijection over
//! the launched grid, so the same set of blocks runs, each doing exactly
//! the same work — only the schedule-order ↦ data-coordinate mapping
//! moves. Bijectivity is what makes the transform semantics-preserving
//! for any kernel without cross-block races, and it is what the
//! differential oracle in `catt-verify` checks end to end.

use catt_ir::expr::{BinOp, Builtin, Expr};
use catt_ir::kernel::Kernel;
use catt_ir::stmt::Stmt;
use catt_ir::visit::walk_exprs_in_stmts_mut;

/// Prologue local holding the swizzled `blockIdx.x`.
pub const SWIZZLE_BX: &str = "catt_sw_bx";
/// Prologue local holding the swizzled `blockIdx.y`.
pub const SWIZZLE_BY: &str = "catt_sw_by";

/// A compile-time bijection over the launched 2-D grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwizzlePolicy {
    /// Even grid rows keep their column order, odd rows reverse it:
    /// `bx' = (by % 2 == 0) ? bx : gx−1−bx`. Consecutive rows then end on
    /// the same columns they start from, so row-boundary neighbours share
    /// their column working set. Identity on 1-D grids.
    Serpentine,
    /// Tile-major traversal: blocks in linear launch order walk a
    /// `t`-column band top to bottom before moving right. Requires
    /// `t | gridDim.x`; identity when `t == gridDim.x` or the grid is
    /// 1-D.
    TileMajor(u32),
    /// XOR-fold of the linear block id: `q = p ^ k`, kept only when `q`
    /// stays inside the grid (otherwise `p` maps to itself). The map is
    /// an involution, hence bijective on any grid size — the only policy
    /// that is non-trivial on 1-D grids, which is what lets the
    /// differential oracle exercise swizzling on its 1-D kernels.
    XorFold(u32),
}

impl SwizzlePolicy {
    /// Stable key=value encoding (`serpentine`, `tile=4`, `xor=5`) used
    /// by recipe strings; round-trips through [`SwizzlePolicy::parse`].
    pub fn describe(&self) -> String {
        match self {
            SwizzlePolicy::Serpentine => "serpentine".into(),
            SwizzlePolicy::TileMajor(t) => format!("tile={t}"),
            SwizzlePolicy::XorFold(k) => format!("xor={k}"),
        }
    }

    /// Inverse of [`SwizzlePolicy::describe`].
    pub fn parse(s: &str) -> Option<SwizzlePolicy> {
        if s == "serpentine" {
            return Some(SwizzlePolicy::Serpentine);
        }
        if let Some(t) = s.strip_prefix("tile=") {
            return t.parse().ok().map(SwizzlePolicy::TileMajor);
        }
        if let Some(k) = s.strip_prefix("xor=") {
            return k.parse().ok().map(SwizzlePolicy::XorFold);
        }
        None
    }

    /// The policies the autotuner and the differential oracle enumerate.
    /// Parameters are kept small and grid-agnostic: tile widths that
    /// divide common grids, XOR keys below every oracle grid size.
    pub fn candidates() -> Vec<SwizzlePolicy> {
        vec![
            SwizzlePolicy::Serpentine,
            SwizzlePolicy::TileMajor(2),
            SwizzlePolicy::TileMajor(4),
            SwizzlePolicy::XorFold(1),
            SwizzlePolicy::XorFold(3),
        ]
    }
}

/// Host-side reference of the block-id map the generated prologue
/// computes: physical `(bx, by)` under `grid = (gx, gy)` ↦ the swizzled
/// coordinates the kernel observes. Tests prove this bijective and the
/// simulator proves the emitted IR agrees with it.
pub fn swizzle_map(policy: SwizzlePolicy, grid: (u32, u32), bx: u32, by: u32) -> (u32, u32) {
    let (gx, gy) = (grid.0 as u64, grid.1 as u64);
    let (bx, by) = (bx as u64, by as u64);
    match policy {
        SwizzlePolicy::Serpentine => {
            if by % 2 == 0 {
                (bx as u32, by as u32)
            } else {
                ((gx - 1 - bx) as u32, by as u32)
            }
        }
        SwizzlePolicy::TileMajor(t) => {
            let t = t as u64;
            let p = by * gx + bx;
            let band = t * gy;
            (((p / band) * t + p % t) as u32, ((p % band) / t) as u32)
        }
        SwizzlePolicy::XorFold(k) => {
            let p = by * gx + bx;
            let q = p ^ k as u64;
            let r = if q < gx * gy { q } else { p };
            ((r % gx) as u32, (r / gx) as u32)
        }
    }
}

/// Apply the CTA swizzle for a known launch grid: rewrite every
/// `blockIdx.x` / `blockIdx.y` use to the prologue locals and prepend
/// their defining declarations. Returns `None` when the policy is not a
/// bijection on this grid (`t ∤ gx`, `t == 0`) or the grid has a `z`
/// extent (3-D swizzles are out of scope).
pub fn cta_swizzle(
    kernel: &Kernel,
    policy: SwizzlePolicy,
    grid: (u32, u32, u32),
) -> Option<Kernel> {
    let (gx, gy, gz) = grid;
    if gz > 1 || gx == 0 || gy == 0 {
        return None;
    }
    match policy {
        SwizzlePolicy::TileMajor(t) if t == 0 || !gx.is_multiple_of(t) => return None,
        // Keys at or above i32::MAX could overflow the kernel's 32-bit
        // signed arithmetic in the `p ^ k` intermediate.
        SwizzlePolicy::XorFold(k) if k > i32::MAX as u32 => return None,
        _ => {}
    }

    let mut out = kernel.clone();
    walk_exprs_in_stmts_mut(&mut out.body, &mut |e| match e {
        Expr::Builtin(Builtin::BlockIdxX) => *e = Expr::var(SWIZZLE_BX),
        Expr::Builtin(Builtin::BlockIdxY) => *e = Expr::var(SWIZZLE_BY),
        _ => {}
    });

    let bx = || Expr::Builtin(Builtin::BlockIdxX);
    let by = || Expr::Builtin(Builtin::BlockIdxY);
    let (gx, gy) = (gx as i64, gy as i64);
    let prologue = match policy {
        SwizzlePolicy::Serpentine => vec![
            Stmt::decl_i32(
                SWIZZLE_BX,
                Expr::Select(
                    Box::new(by().rem(Expr::int(2)).eq_(Expr::int(0))),
                    Box::new(bx()),
                    Box::new(Expr::int(gx - 1).sub(bx())),
                ),
            ),
            Stmt::decl_i32(SWIZZLE_BY, by()),
        ],
        SwizzlePolicy::TileMajor(t) => {
            let t = t as i64;
            let p = || Expr::var("catt_sw_p");
            vec![
                Stmt::decl_i32("catt_sw_p", by().mul(Expr::int(gx)).add(bx())),
                Stmt::decl_i32(
                    SWIZZLE_BX,
                    p().div(Expr::int(t * gy))
                        .mul(Expr::int(t))
                        .add(p().rem(Expr::int(t))),
                ),
                Stmt::decl_i32(SWIZZLE_BY, p().rem(Expr::int(t * gy)).div(Expr::int(t))),
            ]
        }
        SwizzlePolicy::XorFold(k) => {
            let p = || Expr::var("catt_sw_p");
            let q = || Expr::var("catt_sw_q");
            let r = || Expr::var("catt_sw_r");
            vec![
                Stmt::decl_i32("catt_sw_p", by().mul(Expr::int(gx)).add(bx())),
                Stmt::decl_i32(
                    "catt_sw_q",
                    Expr::Binary(BinOp::BitXor, Box::new(p()), Box::new(Expr::int(k as i64))),
                ),
                Stmt::decl_i32(
                    "catt_sw_r",
                    Expr::Select(
                        Box::new(q().lt(Expr::int(gx * gy))),
                        Box::new(q()),
                        Box::new(p()),
                    ),
                ),
                Stmt::decl_i32(SWIZZLE_BX, r().rem(Expr::int(gx))),
                Stmt::decl_i32(SWIZZLE_BY, r().div(Expr::int(gx))),
            ]
        }
    };

    let mut body = prologue;
    body.append(&mut out.body);
    out.body = body;
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use catt_frontend::parse_kernel;
    use catt_ir::printer::kernel_to_string;
    use catt_ir::LaunchConfig;
    use catt_sim::{Arg, GlobalMem, Gpu, GpuConfig};

    fn all_policies() -> Vec<SwizzlePolicy> {
        let mut p = SwizzlePolicy::candidates();
        p.push(SwizzlePolicy::TileMajor(8));
        p.push(SwizzlePolicy::XorFold(7));
        p
    }

    #[test]
    fn describe_parse_roundtrip() {
        for p in all_policies() {
            assert_eq!(SwizzlePolicy::parse(&p.describe()), Some(p));
        }
        assert_eq!(SwizzlePolicy::parse("tile=x"), None);
        assert_eq!(SwizzlePolicy::parse("rotate=1"), None);
    }

    /// Every policy is a bijection on every grid it accepts: the image
    /// of the block set is the block set.
    #[test]
    fn swizzle_map_is_bijective() {
        for policy in all_policies() {
            for grid in [(1u32, 1u32), (4, 1), (8, 1), (8, 4), (16, 16), (12, 5)] {
                if let SwizzlePolicy::TileMajor(t) = policy {
                    if !grid.0.is_multiple_of(t) {
                        continue;
                    }
                }
                let mut seen = std::collections::HashSet::new();
                for by in 0..grid.1 {
                    for bx in 0..grid.0 {
                        let (sx, sy) = swizzle_map(policy, grid, bx, by);
                        assert!(sx < grid.0 && sy < grid.1, "{policy:?} {grid:?} escaped");
                        assert!(
                            seen.insert((sx, sy)),
                            "{policy:?} on {grid:?}: ({bx},{by}) collides at ({sx},{sy})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn serpentine_reverses_odd_rows_only() {
        assert_eq!(swizzle_map(SwizzlePolicy::Serpentine, (8, 4), 2, 0), (2, 0));
        assert_eq!(swizzle_map(SwizzlePolicy::Serpentine, (8, 4), 2, 1), (5, 1));
        // Identity on 1-D grids (row 0 is even).
        assert_eq!(swizzle_map(SwizzlePolicy::Serpentine, (8, 1), 5, 0), (5, 0));
    }

    #[test]
    fn tile_major_walks_column_bands() {
        // 8×4 grid, t = 2: linear ids 0..8 cover the first two columns
        // top to bottom, two per row.
        let t = SwizzlePolicy::TileMajor(2);
        assert_eq!(swizzle_map(t, (8, 4), 0, 0), (0, 0));
        assert_eq!(swizzle_map(t, (8, 4), 1, 0), (1, 0));
        assert_eq!(swizzle_map(t, (8, 4), 2, 0), (0, 1));
        assert_eq!(swizzle_map(t, (8, 4), 3, 0), (1, 1));
        // Linear id 8 starts the next band.
        assert_eq!(swizzle_map(t, (8, 4), 0, 1), (2, 0));
    }

    #[test]
    fn xor_fold_is_nontrivial_on_1d_grids() {
        let k = SwizzlePolicy::XorFold(1);
        assert_eq!(swizzle_map(k, (4, 1), 0, 0), (1, 0));
        assert_eq!(swizzle_map(k, (4, 1), 1, 0), (0, 0));
        // Out-of-range partner: 3 ^ 1 = 2 < 4 swaps, but on a 3-wide
        // grid 2 ^ 1 = 3 ≥ 3 stays put.
        assert_eq!(swizzle_map(k, (3, 1), 2, 0), (2, 0));
    }

    #[test]
    fn rejects_illegal_parameters() {
        let k = parse_kernel("__global__ void k(float *a) { a[blockIdx.x] = 0.0f; }").unwrap();
        assert!(cta_swizzle(&k, SwizzlePolicy::TileMajor(3), (8, 4, 1)).is_none());
        assert!(cta_swizzle(&k, SwizzlePolicy::TileMajor(0), (8, 4, 1)).is_none());
        assert!(cta_swizzle(&k, SwizzlePolicy::Serpentine, (8, 4, 2)).is_none());
        assert!(cta_swizzle(&k, SwizzlePolicy::XorFold(u32::MAX), (8, 4, 1)).is_none());
        assert!(cta_swizzle(&k, SwizzlePolicy::Serpentine, (8, 4, 1)).is_some());
    }

    #[test]
    fn rewrites_every_block_idx_use_and_round_trips() {
        let k = parse_kernel(
            "__global__ void k(float *a, int n) {
                 int i = blockIdx.y * n + blockIdx.x;
                 if (blockIdx.x < n) { a[i * n + threadIdx.x] = 1.0f; }
             }",
        )
        .unwrap();
        let s = cta_swizzle(&k, SwizzlePolicy::Serpentine, (8, 4, 1)).unwrap();
        let src = kernel_to_string(&s);
        assert!(
            !src.contains("blockIdx.x <") && src.contains("catt_sw_bx <"),
            "guard must use the swizzled id:\n{src}"
        );
        assert!(
            src.contains("int catt_sw_bx = (blockIdx.y % 2 == 0 ? blockIdx.x : 7 - blockIdx.x);")
        );
        // The transformed kernel stays inside the frontend's language.
        assert_eq!(parse_kernel(&src).unwrap(), s);
        for policy in all_policies() {
            let s = cta_swizzle(&k, policy, (8, 4, 1)).unwrap();
            let src = kernel_to_string(&s);
            assert_eq!(parse_kernel(&src).unwrap(), s, "{policy:?}:\n{src}");
        }
    }

    /// The emitted prologue computes exactly [`swizzle_map`]: a kernel
    /// that stores its observed block id at its observed linear slot
    /// produces, per physical block, the host-side map's image.
    #[test]
    fn emitted_prologue_agrees_with_host_map() {
        let grid = (8u32, 4u32);
        let probe = parse_kernel(&format!(
            "__global__ void probe(float *ox, float *oy) {{
                 int p = blockIdx.y * {gx} + blockIdx.x;
                 if (threadIdx.x == 0) {{
                     ox[p] = (float)blockIdx.x;
                     oy[p] = (float)blockIdx.y;
                 }}
             }}",
            gx = grid.0
        ))
        .unwrap();
        for policy in all_policies() {
            let s = cta_swizzle(&probe, policy, (grid.0, grid.1, 1)).unwrap();
            let mut mem = GlobalMem::new();
            let n = grid.0 * grid.1;
            let ox = mem.alloc_zeroed(n);
            let oy = mem.alloc_zeroed(n);
            let mut gpu = Gpu::new(GpuConfig::titan_v_1sm());
            gpu.launch(
                &s,
                LaunchConfig {
                    grid: catt_ir::Dim3 {
                        x: grid.0,
                        y: grid.1,
                        z: 1,
                    },
                    block: catt_ir::Dim3::x(32),
                },
                &[Arg::Buf(ox), Arg::Buf(oy)],
                &mut mem,
            )
            .unwrap();
            let (vx, vy) = (mem.read_f32(ox), mem.read_f32(oy));
            for by in 0..grid.1 {
                for bx in 0..grid.0 {
                    // The store address `p` itself uses swizzled ids, so
                    // physical block (bx,by) writes map(bx,by) at slot
                    // lin(map(bx,by)) — i.e. every slot q holds q.
                    let q = (by * grid.0 + bx) as usize;
                    assert_eq!(
                        (vx[q] as u32, vy[q] as u32),
                        (bx, by),
                        "{policy:?}: slot {q}"
                    );
                }
            }
        }
    }

    /// Functional transparency in the simulator: a gram-style 2-D kernel
    /// produces a bit-identical memory image under every policy.
    #[test]
    fn swizzled_kernels_preserve_semantics_in_sim() {
        let (r, k) = (64usize, 16usize);
        let src = format!(
            "#define R {r}
             #define K {k}
             __global__ void gram(float *A, float *out) {{
                 int row = blockIdx.y * blockDim.y + threadIdx.y;
                 int col = blockIdx.x * blockDim.x + threadIdx.x;
                 float acc = 0.0f;
                 for (int j = 0; j < K; j++) {{
                     acc += A[row * K + j] * A[col * K + j];
                 }}
                 out[row * R + col] = acc;
             }}"
        );
        let base = parse_kernel(&src).unwrap();
        let grid = (r as u32 / 8, r as u32 / 8, 1);
        let launch = LaunchConfig {
            grid: catt_ir::Dim3 {
                x: grid.0,
                y: grid.1,
                z: 1,
            },
            block: catt_ir::Dim3 { x: 8, y: 8, z: 1 },
        };
        let run = |kern: &Kernel| {
            let mut mem = GlobalMem::new();
            let a = mem.alloc_f32(&(0..r * k).map(|v| (v % 17) as f32).collect::<Vec<_>>());
            let out = mem.alloc_zeroed((r * r) as u32);
            Gpu::new(GpuConfig::titan_v_1sm())
                .launch(kern, launch, &[Arg::Buf(a), Arg::Buf(out)], &mut mem)
                .unwrap();
            mem.content_digest()
        };
        let want = run(&base);
        for policy in all_policies() {
            let s = cta_swizzle(&base, policy, grid).unwrap();
            assert_eq!(run(&s), want, "{policy:?} changed the memory image");
        }
    }
}
