//! # catt-core — Compiler-Assisted Thread Throttling
//!
//! The paper's primary contribution (ICPP 2019): a compile-time analysis
//! that estimates each loop's L1D footprint from array index expressions
//! and a source-to-source transformation that throttles thread-level
//! parallelism until the footprint fits the L1D.
//!
//! Pipeline (paper §4):
//!
//! 1. [`occupancy`] — configure the L1D / shared-memory split (§4.1,
//!    Eq. 1–4) and compute the number of concurrently resident thread
//!    blocks per SM.
//! 2. [`analysis`] — for every loop, extract the affine form
//!    `C_tid·tid + C_i·i` of every global-memory access (Eq. 5), decide
//!    cache locality (Eq. 6), count per-warp requests after coalescing
//!    (Eq. 7), sum the concurrent footprint (Eq. 8), and search the
//!    throttling factors `(N, M)` that make it fit (Eq. 9).
//! 3. [`transform`] — rewrite the kernel: warp-level throttling splits a
//!    loop into `N` warp-group phases separated by `__syncthreads()`
//!    (Fig. 4); TB-level throttling inserts a dummy `__shared__` array to
//!    reduce resident blocks (Fig. 5).
//! 4. [`passes`] / [`pipeline`] — the end-to-end
//!    `parse → analyze → legalize → transform → emit` driver, the
//!    library's main entry point: an explicit pass pipeline with panic
//!    containment (an escaped panic becomes an `E030` diagnostic, not a
//!    crash) and content-addressed memoization of the parse and analyze
//!    stages (`CATT_PASS_CACHE`).
//!
//! [`bftt`] implements the paper's strongest software baseline: best-fixed
//! thread throttling, which exhaustively simulates every `(warps, TBs)`
//! combination and keeps the fastest — one fixed setting per application,
//! versus CATT's per-loop settings.

pub mod analysis;
pub mod bftt;
pub mod engine;
pub mod fault;
pub mod multiversion;
pub mod occupancy;
pub mod passes;
pub mod pipeline;
pub mod swizzle;
pub mod transform;

pub use analysis::{
    analyze_kernel, AccessAnalysis, KernelAnalysis, LoopAnalysis, ThrottleDecision,
};
pub use bftt::{BfttCandidate, BfttResult, CandidateOutcome, SweepError};
pub use engine::{CacheCounters, Engine, JobError, Progress};
pub use fault::FaultPlan;
pub use multiversion::MultiVersioned;
pub use occupancy::L1SmemPlan;
pub use passes::{pass_cache_stats, reset_pass_cache, LegalPlan, Pass, PassManager, PassStats};
pub use pipeline::{CompiledApp, CompiledKernel, Pipeline, PipelineError};
pub use swizzle::{cta_swizzle, swizzle_map, SwizzlePolicy};
pub use transform::{
    eligible_loops, eligible_loops_for, guard_block_uniform, tb_throttle, warp_throttle,
};
