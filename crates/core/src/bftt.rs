//! Best-fixed thread throttling (BFTT) — the paper's strongest software
//! baseline (§5): exhaustively try every `(warps, TBs)` combination for an
//! application, measure each on the simulator, and keep the fastest. One
//! fixed setting per application, in contrast to CATT's per-loop settings.

use crate::engine::{Engine, JobError};
use crate::pipeline::apply_uniform;
use catt_ir::kernel::{Kernel, LaunchConfig};
use catt_sim::{max_resident_tbs, GpuConfig, LaunchStats};
use std::fmt;

/// A sweep failed outright: the *baseline* candidate `(n=1, m=0)` — the
/// untransformed application every speedup is measured against — panicked
/// or errored, so no meaningful result exists. Non-baseline candidate
/// faults do **not** raise this: they are recorded as
/// [`CandidateOutcome::Faulted`] and excluded from the argmin.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepError {
    /// Warp divisor of the failing candidate.
    pub n: u32,
    /// TB reduction of the failing candidate.
    pub m: u32,
    /// The underlying job failure.
    pub cause: JobError,
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BFTT candidate (n={}, m={}) failed: {}",
            self.n, self.m, self.cause
        )
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.cause)
    }
}

/// One evaluated candidate.
#[derive(Debug, Clone)]
pub struct BfttCandidate {
    /// Warp divisor tried.
    pub n: u32,
    /// TB reduction tried.
    pub m: u32,
    /// Active warps per block this candidate runs (`#Warps_TB / n`).
    pub warps: u32,
    /// Resident blocks per SM this candidate runs.
    pub tbs: u32,
    /// Measured statistics of the whole application.
    pub stats: LaunchStats,
}

/// Outcome of one sweep candidate: measured, or faulted and excluded.
#[derive(Debug, Clone)]
pub enum CandidateOutcome {
    /// The candidate simulated successfully.
    Healthy(BfttCandidate),
    /// The candidate's simulation faulted (deadlock, fuel exhaustion,
    /// panic, …). Recorded for diagnostics, excluded from the argmin.
    Faulted {
        /// Warp divisor of the faulted candidate.
        n: u32,
        /// TB reduction of the faulted candidate.
        m: u32,
        /// What went wrong.
        error: JobError,
    },
}

/// Result of a BFTT sweep.
#[derive(Debug, Clone)]
pub struct BfttResult {
    /// Every grid point's outcome, in sweep order (`(n=1, m=0)` first).
    pub outcomes: Vec<CandidateOutcome>,
    /// The healthy candidates, in sweep order (`(n=1, m=0)` first — the
    /// baseline, which is guaranteed healthy: a faulted baseline fails
    /// the sweep with a [`SweepError`] instead).
    pub candidates: Vec<BfttCandidate>,
    /// Index of the fastest candidate (into `candidates`).
    pub best: usize,
}

impl BfttResult {
    /// The fastest healthy candidate.
    pub fn best_candidate(&self) -> &BfttCandidate {
        &self.candidates[self.best]
    }

    /// The baseline (untransformed) candidate.
    pub fn baseline(&self) -> &BfttCandidate {
        &self.candidates[0]
    }

    /// Speedup of the best candidate over the baseline.
    pub fn best_speedup(&self) -> f64 {
        self.baseline().stats.cycles as f64 / self.best_candidate().stats.cycles as f64
    }

    /// The faulted candidates (empty on a fully healthy sweep).
    pub fn faulted(&self) -> Vec<(u32, u32, &JobError)> {
        self.outcomes
            .iter()
            .filter_map(|o| match o {
                CandidateOutcome::Faulted { n, m, error } => Some((*n, *m, error)),
                CandidateOutcome::Healthy(_) => None,
            })
            .collect()
    }
}

/// Candidate `(n, m)` grid for an application whose kernels run
/// `warps_per_tb` warps per block with `resident_tbs` blocks per SM:
/// `n` over the divisors of `warps_per_tb` (so groups partition evenly),
/// `m` from 0 (only combined with `n = warps_per_tb`, mirroring the
/// paper's search order: warps first, then blocks).
pub fn candidate_grid(warps_per_tb: u32, resident_tbs: u32) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for n in 1..=warps_per_tb {
        if warps_per_tb.is_multiple_of(n) {
            out.push((n, 0));
        }
    }
    for m in 1..resident_tbs {
        out.push((warps_per_tb, m));
    }
    out
}

/// Exhaustive sweep on the process-wide [`Engine`]. See [`sweep_on`].
pub fn sweep<F>(
    scope: &str,
    kernels: &[Kernel],
    launch: LaunchConfig,
    config: &GpuConfig,
    run: F,
) -> Result<BfttResult, SweepError>
where
    F: Fn(&[Kernel], &GpuConfig) -> LaunchStats + Sync,
{
    sweep_on(Engine::global(), scope, kernels, launch, config, run)
}

/// Exhaustive sweep. `run` executes the application end to end with the
/// given (transformed) kernels on `config` and returns its total
/// statistics; it is called once per *uncached* candidate, on `engine`'s
/// bounded worker pool. `scope` names the application and its inputs in
/// the simulation-cache key (registry workloads pass their abbreviation).
///
/// The sweep degrades gracefully: a non-baseline candidate whose
/// simulation panics or errors is recorded as
/// [`CandidateOutcome::Faulted`] and excluded from the argmin, so one bad
/// `(n, m)` setting cannot take down the run. Only a faulted *baseline*
/// `(n=1, m=0)` — without which there is nothing to compare against —
/// fails the sweep, with a [`SweepError`] identifying it.
///
/// All kernels must share one block geometry (true of every workload in
/// the paper's Table 2; mixed-geometry applications would need a
/// per-kernel grid, which BFTT by definition does not have).
pub fn sweep_on<F>(
    engine: &Engine,
    scope: &str,
    kernels: &[Kernel],
    launch: LaunchConfig,
    config: &GpuConfig,
    run: F,
) -> Result<BfttResult, SweepError>
where
    F: Fn(&[Kernel], &GpuConfig) -> LaunchStats + Sync,
{
    let warps_per_tb = launch.warps_per_block();
    // Occupancy of the *least occupied* kernel bounds the M axis.
    let resident_tbs = kernels
        .iter()
        .map(|k| {
            let regs = catt_sim::lower(k).map(|p| p.num_regs as u32).unwrap_or(32);
            max_resident_tbs(
                config,
                k.shared_mem_bytes(),
                regs,
                launch.threads_per_block(),
            )
            .resident_tbs()
        })
        .min()
        .unwrap_or(1)
        .max(1);
    let grid = candidate_grid(warps_per_tb, resident_tbs);

    let label = format!("BFTT {scope}");
    let results = engine.run_jobs(&label, &grid, |_, &(n, m)| {
        let transformed: Vec<Kernel> = kernels
            .iter()
            .map(|k| {
                apply_uniform(
                    k,
                    n,
                    m,
                    warps_per_tb,
                    resident_tbs,
                    config.smem_carveout_bytes,
                )
            })
            .collect();
        // The digest scope stays the plain application tag: candidates are
        // distinguished by their transformed programs, so a no-op
        // transform (n=1, m=0) shares its entry with the baseline run.
        let stats = engine.sim_app(scope, &transformed, &[launch], config, || {
            run(&transformed, config)
        })?;
        Ok(BfttCandidate {
            n,
            m,
            warps: warps_per_tb / n,
            tbs: resident_tbs - m,
            stats,
        })
    });

    let mut outcomes = Vec::with_capacity(grid.len());
    let mut candidates = Vec::new();
    for (idx, (result, &(n, m))) in results.into_iter().zip(&grid).enumerate() {
        match result {
            Ok(candidate) => {
                candidates.push(candidate.clone());
                outcomes.push(CandidateOutcome::Healthy(candidate));
            }
            Err(cause) => {
                if idx == 0 {
                    // The baseline is the denominator of every speedup;
                    // without it the sweep has no meaning.
                    return Err(SweepError { n, m, cause });
                }
                outcomes.push(CandidateOutcome::Faulted { n, m, error: cause });
            }
        }
    }
    let best = candidates
        .iter()
        .enumerate()
        .min_by_key(|(_, c)| c.stats.cycles)
        .map(|(i, _)| i)
        .expect("baseline candidate is healthy");
    Ok(BfttResult {
        outcomes,
        candidates,
        best,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use catt_frontend::parse_kernel;
    use catt_sim::{Arg, GlobalMem, Gpu};

    #[test]
    fn grid_shape() {
        let g = candidate_grid(8, 4);
        assert_eq!(
            g,
            vec![(1, 0), (2, 0), (4, 0), (8, 0), (8, 1), (8, 2), (8, 3)]
        );
        let g = candidate_grid(6, 2);
        assert_eq!(g, vec![(1, 0), (2, 0), (3, 0), (6, 0), (6, 1)]);
    }

    /// On a cache-thrashing kernel, BFTT must find a throttled setting
    /// faster than the baseline.
    #[test]
    fn sweep_finds_throttled_optimum_on_contended_kernel() {
        let n = 256usize;
        let src = format!(
            "#define N {n}
             __global__ void mv(float *A, float *B, float *tmp) {{
                 int i = blockIdx.x * blockDim.x + threadIdx.x;
                 if (i < N) {{
                     for (int j = 0; j < N; j++) {{
                         tmp[i] += A[i * N + j] * B[j];
                     }}
                 }}
             }}"
        );
        let kernel = parse_kernel(&src).unwrap();
        let launch = LaunchConfig::d1(1, 256);
        let mut config = GpuConfig::titan_v_1sm();
        config.l1_cap_bytes = Some(32 * 1024);
        let result = sweep(
            "test-mv",
            std::slice::from_ref(&kernel),
            launch,
            &config,
            |kernels, cfg| {
                let mut mem = GlobalMem::new();
                let a = mem.alloc_f32(&vec![1.0; n * n]);
                let b = mem.alloc_f32(&vec![1.0; n]);
                let tmp = mem.alloc_zeroed(n as u32);
                let mut gpu = Gpu::new(cfg.clone());
                let stats = gpu
                    .launch(
                        &kernels[0],
                        launch,
                        &[Arg::Buf(a), Arg::Buf(b), Arg::Buf(tmp)],
                        &mut mem,
                    )
                    .unwrap();
                assert!(mem.read_f32(tmp).iter().all(|&v| v == n as f32));
                stats
            },
        )
        .expect("sweep succeeds");
        assert_eq!(result.baseline().n, 1);
        let best = result.best_candidate();
        assert!(
            best.n > 1 || best.m > 0,
            "contended kernel must prefer throttling (best: n={} m={})",
            best.n,
            best.m
        );
        assert!(
            result.best_speedup() > 1.2,
            "speedup {:.2}",
            result.best_speedup()
        );
    }

    /// On a cache-insensitive kernel, the baseline must win (or tie):
    /// BFTT never "mis-throttles" because it measures.
    #[test]
    fn sweep_keeps_baseline_on_insensitive_kernel() {
        let n = 4096usize;
        let src = "
            __global__ void stream(float *a, float *b, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) { b[i] = a[i] * 2.0f; }
            }";
        let kernel = parse_kernel(src).unwrap();
        let launch = LaunchConfig::d1(16, 256);
        let config = GpuConfig::titan_v_1sm();
        let result = sweep(
            "test-stream",
            std::slice::from_ref(&kernel),
            launch,
            &config,
            |kernels, cfg| {
                let mut mem = GlobalMem::new();
                let a = mem.alloc_f32(&vec![1.0; n]);
                let b = mem.alloc_zeroed(n as u32);
                let mut gpu = Gpu::new(cfg.clone());
                gpu.launch(
                    &kernels[0],
                    launch,
                    &[Arg::Buf(a), Arg::Buf(b), Arg::I32(n as i32)],
                    &mut mem,
                )
                .unwrap()
            },
        )
        .expect("sweep succeeds");
        let best = result.best_candidate();
        let base = result.baseline();
        assert!(
            best.stats.cycles <= base.stats.cycles,
            "sweep must never return something slower than what it measured"
        );
        // The baseline should be at or near the optimum for a streaming
        // kernel: best is within 5% of baseline.
        assert!(
            base.stats.cycles as f64 <= best.stats.cycles as f64 * 1.05,
            "baseline {} vs best {} — throttling should not help a stream",
            base.stats.cycles,
            best.stats.cycles
        );
    }
}
