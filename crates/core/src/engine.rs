//! # Evaluation engine — bounded parallel simulation with a content-addressed cache
//!
//! The paper's evaluation (Tables 1–3, Figs. 2–10) re-runs the simulator
//! hundreds of times: a full BFTT sweep per application per cache
//! configuration, and the same (kernel, launch, config) points across
//! several figure binaries. Both structures are exploited here:
//!
//! * **Bounded worker pool** — simulation jobs run on at most
//!   [`Engine::workers`] OS threads (default: `available_parallelism()`),
//!   replacing the old one-unbounded-thread-per-candidate sweep. Results
//!   come back in job order regardless of completion order, and worker
//!   panics are caught and propagated as [`JobError`]s instead of
//!   poisoning the whole sweep.
//! * **Content-addressed simulation cache** — results are memoized under a
//!   stable digest of (lowered kernel programs, launch geometry,
//!   [`GpuConfig`], scope tag). An in-memory layer serves repeats within a
//!   process; an optional persistent JSONL layer under
//!   `results/.simcache/` makes warm re-runs of any table/figure binary
//!   near-instant. Traced runs (`GpuConfig::trace_requests`) and profiled
//!   runs (`GpuConfig::profile` / `CATT_PROFILE`) bypass the cache — the
//!   request trace and the launch profile are diagnostic side channels
//!   the cache deliberately does not store.
//!
//! ## Guard rails
//!
//! The engine is the fault boundary of the evaluation stack. Job failures
//! are classified as *fatal* (a [`catt_sim::SimError`], a panic, a
//! validation failure — rerunning cannot help) or *retryable* (transient
//! I/O); retryable failures are retried with linear backoff up to
//! `CATT_ENGINE_RETRIES` times. Each job's wall-clock time is compared
//! against the optional `CATT_JOB_DEADLINE_MS` watchdog deadline and
//! overruns are counted and reported. The persistent simcache is
//! versioned and checksummed per line, appended per insert under a
//! cross-process lock, compacted atomically (tempfile-then-rename) on
//! load repair and flush, and corrupt or stale lines are skipped with a
//! reported count — never a crash. The [`crate::fault`] module can
//! inject worker panics and cache corruption to exercise all of it.
//!
//! Environment knobs (read by [`Engine::global`] /
//! [`Engine::init_global_persistent`]):
//!
//! * `CATT_SIMCACHE=off` — disable caching entirely (force cold runs);
//! * `CATT_SIMCACHE=mem` — in-memory layer only, nothing persisted;
//! * `CATT_SIMCACHE=<dir>` — persist under `<dir>` instead of
//!   `results/.simcache/`;
//! * `CATT_ENGINE_WORKERS=<n>` — override the worker-pool bound. The
//!   active count is published to `catt-sim` for the duration of each
//!   batch, so per-launch SM parallelism (`CATT_SIM_SM_PARALLEL`) budgets
//!   `available_parallelism / workers` threads per launch instead of
//!   oversubscribing the machine;
//! * `CATT_ENGINE_PROGRESS=off|summary|full` — stderr verbosity
//!   (default `summary`: one line per batch, no per-job ticker);
//! * `CATT_ENGINE_RETRIES=<n>` — retry budget for retryable failures
//!   (default 2);
//! * `CATT_JOB_DEADLINE_MS=<ms>` — per-job wall-clock watchdog;
//! * `CATT_FAULT_PLAN=...` — fault injection, see [`crate::fault`].

use crate::fault::FaultPlan;
use catt_ir::kernel::{Kernel, LaunchConfig};
use catt_sim::{Fnv64, GpuConfig, LaunchStats};
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// A simulation job failed: the closure panicked (failed validation,
/// lowering assert, out-of-range access) or returned an error itself.
#[derive(Debug, Clone, PartialEq)]
pub struct JobError {
    /// Which job failed (caller-supplied label, e.g. `"ATAX (n=4, m=0)"`).
    pub label: String,
    /// What went wrong.
    pub message: String,
    /// Whether rerunning the job could plausibly succeed (transient
    /// I/O: yes; a deterministic simulator verdict or a panic: no).
    /// Retryable failures get [`Engine`]'s bounded retry with backoff.
    pub retryable: bool,
    /// Stable machine-readable classification, when one exists: a
    /// `catt_sim::SimError::code()` token (`"fuel-exhausted"`,
    /// `"cancelled"`, ...) or `"panic"` for caught panics. `catt serve`
    /// maps this to its structured API error kinds; human-facing paths
    /// only read `message`.
    pub code: Option<&'static str>,
}

impl JobError {
    /// A fatal (non-retryable) failure: a deterministic simulator error,
    /// failed validation, or any other fault rerunning cannot fix.
    pub fn fatal(label: impl Into<String>, message: impl Into<String>) -> JobError {
        JobError {
            label: label.into(),
            message: message.into(),
            retryable: false,
            code: None,
        }
    }

    /// Attach a machine-readable classification code (builder-style).
    pub fn with_code(mut self, code: &'static str) -> JobError {
        self.code = Some(code);
        self
    }

    /// A transient failure (e.g. cache I/O) worth retrying with backoff.
    pub fn transient(label: impl Into<String>, message: impl Into<String>) -> JobError {
        JobError {
            label: label.into(),
            message: message.into(),
            retryable: true,
            code: None,
        }
    }

    /// Build an error for `label` out of a caught panic payload. Panics
    /// are always fatal: the worker state that produced them is gone.
    fn from_panic(label: &str, payload: Box<dyn std::any::Any + Send>) -> JobError {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "job panicked (non-string payload)".to_string());
        JobError::fatal(label, message).with_code("panic")
    }
}

/// Stderr verbosity of the engine (`CATT_ENGINE_PROGRESS`): `Off` is
/// silent, `Summary` (the default) prints one line per job batch,
/// `Full` adds the live per-job ticker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Progress {
    /// No engine output at all.
    Off,
    /// One line per batch plus the final cache summary.
    Summary,
    /// Per-job progress ticker on top of `Summary`.
    Full,
}

impl Progress {
    /// Parse `CATT_ENGINE_PROGRESS` (default [`Progress::Summary`];
    /// unknown values also fall back to `Summary`).
    pub fn from_env() -> Progress {
        match std::env::var("CATT_ENGINE_PROGRESS").as_deref() {
            Ok("off") => Progress::Off,
            Ok("full") => Progress::Full,
            _ => Progress::Summary,
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulation job `{}` failed: {}",
            self.label, self.message
        )
    }
}

impl std::error::Error for JobError {}

/// Cache hit/miss counters (cumulative over the engine's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Jobs answered from the in-memory or persistent layer.
    pub hits: u64,
    /// Jobs actually simulated.
    pub misses: u64,
    /// Persistent-cache lines dropped at load time (corrupt checksum,
    /// stale version, unparsable) — each skip costs one recomputation,
    /// never a crash.
    pub skipped: u64,
    /// Jobs that coalesced onto another caller's identical in-flight
    /// simulation instead of running their own (single-flight dedupe,
    /// see [`Engine::sim_app_shared`]). Not counted in `hits`.
    pub coalesced: u64,
}

impl CacheCounters {
    /// Hit fraction over all cache-eligible jobs (0 when none ran).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Stable identity of one simulation job. See [`job_digest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobKey(pub u64);

impl JobKey {
    fn hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

/// Content digest of a simulation job: `scope` (application + input
/// identity — the workload abbreviation for registry apps), the *lowered*
/// program of every kernel the job runs, the launch geometry, and the
/// full GPU configuration. Kernels are lowered here so that two sources
/// with identical lowering share one cache entry, and any change to the
/// lowering itself changes every digest (automatic invalidation).
pub fn job_digest(
    scope: &str,
    kernels: &[Kernel],
    launches: &[LaunchConfig],
    config: &GpuConfig,
) -> Result<JobKey, JobError> {
    let mut h = Fnv64::new();
    h.write_str("catt-simcache-v1").write_str(scope);
    for k in kernels {
        let program = catt_sim::lower(k)
            .map_err(|e| JobError::fatal(scope, format!("kernel `{}`: {e}", k.name)))?;
        h.write_debug(&program.content_digest());
    }
    h.write_debug(&launches);
    h.write_debug(&config.content_digest());
    Ok(JobKey(h.finish()))
}

/// Where cached results live.
enum CacheMode {
    /// No caching at all (every job simulates).
    Off,
    /// In-memory map only.
    Memory,
    /// In-memory map backed by a JSONL append log.
    Persistent(PathBuf),
}

/// The content-addressed simulation cache.
///
/// Persistent format (v2): one JSON object per line,
/// `{"v":2,"crc":"<16 hex>","key":"<16 hex>",<stat fields>}`, where `crc`
/// is the FNV-1a 64 digest of everything after it (`"key":...` to the
/// closing brace, exclusive). Loads drop any line whose version, checksum,
/// or fields don't check out — counting them in
/// [`CacheCounters::skipped`] — and immediately rewrite a clean file.
/// Inserts *append* one line under the cross-process [`CacheLock`] — O(1)
/// disk traffic per miss instead of rewriting the whole file — while the
/// full merge-and-rewrite (tempfile then `rename`, disk map merged in
/// first so another writer's lines survive) runs only on load repair and
/// explicit flush. Duplicate keys from racing appenders are harmless:
/// the store is content-addressed (identical key ⇒ identical stats) and
/// loads keep the last occurrence. A killed process can truncate at most
/// a final line that the next load repairs, never wedge the file.
struct SimCache {
    mode: CacheMode,
    mem: Mutex<HashMap<u64, LaunchStats>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Lines dropped at load time (bad checksum / stale version).
    skipped: AtomicU64,
    /// Jobs that waited on another caller's identical in-flight
    /// simulation (single-flight dedupe, see [`Engine::sim_app_shared`]).
    coalesced: AtomicU64,
    /// Fault injection: corrupt the checksum of one persisted line.
    corrupt_armed: AtomicBool,
    /// The key whose line is rendered with a poisoned checksum.
    poisoned: Mutex<Option<u64>>,
}

impl SimCache {
    const FILE: &'static str = "cache.jsonl";
    const LINE_PREFIX: &'static str = "{\"v\":2,\"crc\":\"";

    fn new(mode: CacheMode) -> SimCache {
        let (mem, skipped) = match &mode {
            CacheMode::Persistent(dir) => Self::load(dir),
            _ => (HashMap::new(), 0),
        };
        let cache = SimCache {
            mode,
            mem: Mutex::new(mem),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            skipped: AtomicU64::new(skipped),
            coalesced: AtomicU64::new(0),
            corrupt_armed: AtomicBool::new(false),
            poisoned: Mutex::new(None),
        };
        // Repair the file right away when corrupt/stale lines were
        // dropped, so the damage is paid for exactly once.
        if skipped > 0 {
            cache.persist();
        }
        cache
    }

    /// Arm fault injection: the next inserted entry is persisted with a
    /// deliberately wrong checksum (see [`FaultPlan::corrupt_cache`]).
    fn arm_corruption(&self) {
        self.corrupt_armed.store(true, Ordering::Relaxed);
    }

    /// The `"key":...` payload of one persistent line.
    fn line_payload(key: u64, stats: &LaunchStats) -> String {
        format!(
            "\"key\":\"{}\",{}",
            JobKey(key).hex(),
            stats.to_json_fields()
        )
    }

    /// Checksum of a line payload.
    fn crc(payload: &str) -> u64 {
        Fnv64::new().write_str(payload).finish()
    }

    /// Render one v2 line; a poisoned line gets a bitwise-inverted
    /// checksum so the next load must reject it.
    fn render_line(key: u64, stats: &LaunchStats, poison: bool) -> String {
        let payload = Self::line_payload(key, stats);
        let mut crc = Self::crc(&payload);
        if poison {
            crc = !crc;
        }
        format!("{}{:016x}\",{}}}", Self::LINE_PREFIX, crc, payload)
    }

    /// Parse and verify one v2 line.
    fn parse_line(line: &str) -> Option<(u64, LaunchStats)> {
        let rest = line.strip_prefix(Self::LINE_PREFIX)?;
        let crc = u64::from_str_radix(rest.get(..16)?, 16).ok()?;
        let payload = rest.get(16..)?.strip_prefix("\",")?.strip_suffix('}')?;
        if Self::crc(payload) != crc {
            return None;
        }
        let key_hex = payload.strip_prefix("\"key\":\"")?.get(..16)?;
        let key = u64::from_str_radix(key_hex, 16).ok()?;
        Some((key, LaunchStats::from_json_line(payload)?))
    }

    /// Read the JSONL log. Every line that fails the version, checksum,
    /// or field check is dropped and counted — a truncated final line
    /// from a killed process or a flipped bit on disk costs one
    /// recomputation, never a wedged cache.
    fn load(dir: &Path) -> (HashMap<u64, LaunchStats>, u64) {
        let mut map = HashMap::new();
        let mut skipped = 0u64;
        let Ok(text) = fs::read_to_string(dir.join(Self::FILE)) else {
            return (map, skipped);
        };
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            match Self::parse_line(line) {
                Some((key, stats)) => {
                    map.insert(key, stats);
                }
                None => skipped += 1,
            }
        }
        (map, skipped)
    }

    fn lookup(&self, key: JobKey) -> Option<LaunchStats> {
        if matches!(self.mode, CacheMode::Off) {
            return None;
        }
        let found = self.mem.lock().unwrap().get(&key.0).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Rewrite the persistent file atomically from the in-memory map:
    /// render every entry (sorted by key for determinism) into
    /// `cache.jsonl.tmp.<pid>`, then `rename` over the live file. Holding
    /// the `mem` lock across the write serializes concurrent persists
    /// within the process; a [`CacheLock`] file serializes writers across
    /// processes. Under the lock the on-disk file is re-read and merged
    /// into the in-memory map before the rewrite, so entries another
    /// writer persisted since our load survive — the store is
    /// content-addressed (identical key ⇒ identical stats), which makes
    /// the union conflict-free and no acknowledged line is ever lost.
    fn persist(&self) {
        let CacheMode::Persistent(dir) = &self.mode else {
            return;
        };
        let _ = fs::create_dir_all(dir);
        let lock = CacheLock::acquire(dir);
        if lock.is_none() {
            eprintln!(
                "[engine] warning: simcache lock under {} unavailable; persisting unlocked",
                dir.display()
            );
        }
        let mut mem = self.mem.lock().unwrap();
        let (disk, _) = Self::load(dir);
        for (key, stats) in disk {
            mem.entry(key).or_insert(stats);
        }
        let mem = &*mem;
        let poisoned = *self.poisoned.lock().unwrap();
        let mut entries: Vec<(&u64, &LaunchStats)> = mem.iter().collect();
        entries.sort_by_key(|(k, _)| **k);
        let mut text = String::new();
        for (key, stats) in entries {
            text.push_str(&Self::render_line(*key, stats, poisoned == Some(*key)));
            text.push('\n');
        }
        let tmp = dir.join(format!("{}.tmp.{}", Self::FILE, std::process::id()));
        let write = fs::File::create(&tmp)
            .and_then(|mut f| f.write_all(text.as_bytes()))
            .and_then(|_| fs::rename(&tmp, dir.join(Self::FILE)));
        if let Err(e) = write {
            let _ = fs::remove_file(&tmp);
            eprintln!(
                "[engine] warning: cannot persist simcache under {}: {e}",
                dir.display()
            );
        }
    }

    /// Append one just-inserted entry to the JSONL log. O(1) per insert
    /// (the merge-and-rewrite path is reserved for load repair and
    /// flush), done *outside* the `mem` lock, and serialized against
    /// other writers' appends and rewrites by the same [`CacheLock`] —
    /// an unlocked appender racing a tempfile-rename rewrite could land
    /// its line on the doomed inode and lose an acknowledged entry.
    fn append_line(&self, key: u64, stats: &LaunchStats) {
        let CacheMode::Persistent(dir) = &self.mode else {
            return;
        };
        let _ = fs::create_dir_all(dir);
        let lock = CacheLock::acquire(dir);
        if lock.is_none() {
            eprintln!(
                "[engine] warning: simcache lock under {} unavailable; appending unlocked",
                dir.display()
            );
        }
        let poison = *self.poisoned.lock().unwrap() == Some(key);
        let mut line = Self::render_line(key, stats, poison);
        line.push('\n');
        let write = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(Self::FILE))
            .and_then(|mut f| f.write_all(line.as_bytes()));
        if let Err(e) = write {
            eprintln!(
                "[engine] warning: cannot append to simcache under {}: {e}",
                dir.display()
            );
        }
    }

    fn insert(&self, key: JobKey, stats: &LaunchStats) {
        match &self.mode {
            CacheMode::Off => {}
            CacheMode::Memory => {
                self.mem.lock().unwrap().insert(key.0, stats.clone());
            }
            CacheMode::Persistent(_) => {
                self.mem.lock().unwrap().insert(key.0, stats.clone());
                if self.corrupt_armed.swap(false, Ordering::Relaxed) {
                    *self.poisoned.lock().unwrap() = Some(key.0);
                }
                self.append_line(key.0, stats);
            }
        }
    }

    fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            skipped: self.skipped.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
        }
    }
}

/// An advisory cross-process lock over the persistent simcache file,
/// taken with `O_CREAT|O_EXCL` (`create_new`) on a sibling `.lock` file —
/// the one filesystem primitive that is atomic everywhere std runs.
/// Holders that die without unlinking are broken by age: a lock file
/// older than [`CacheLock::STALE`] is presumed orphaned and removed.
/// Waiting is bounded; on timeout the writer proceeds *unlocked* (a
/// last-writer-wins persist is strictly better than a wedged engine).
struct CacheLock {
    path: PathBuf,
}

impl CacheLock {
    const STALE: Duration = Duration::from_secs(10);
    const WAIT: Duration = Duration::from_secs(10);

    fn acquire(dir: &Path) -> Option<CacheLock> {
        let path = dir.join(format!("{}.lock", SimCache::FILE));
        let deadline = Instant::now() + Self::WAIT;
        loop {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    let _ = write!(f, "{}", std::process::id());
                    return Some(CacheLock { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let stale = fs::metadata(&path)
                        .and_then(|md| md.modified())
                        .ok()
                        .and_then(|t| t.elapsed().ok())
                        .is_some_and(|age| age > Self::STALE);
                    if stale {
                        // Orphaned by a killed holder; break it. Two
                        // waiters may both remove and race to recreate —
                        // `create_new` lets exactly one win.
                        let _ = fs::remove_file(&path);
                        continue;
                    }
                    if Instant::now() >= deadline {
                        return None;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => return None,
            }
        }
    }
}

impl Drop for CacheLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Where a [`Engine::sim_app_shared`] result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimSource {
    /// This caller ran the simulation itself.
    Computed,
    /// Served from the content-addressed cache.
    CacheHit,
    /// Waited on another caller's identical in-flight simulation
    /// (single-flight dedupe).
    Coalesced,
}

/// A [`Engine::sim_app_shared`] result plus its provenance — `catt serve`
/// reports provenance per request (and the load harness derives its cache
/// hit rate from it).
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// The simulation result.
    pub stats: LaunchStats,
    /// How it was obtained.
    pub source: SimSource,
}

/// The evaluation engine: a bounded worker pool plus the simulation cache.
pub struct Engine {
    workers: usize,
    cache: SimCache,
    /// Armed fault injections (from `CATT_FAULT_PLAN` or
    /// [`Engine::with_fault_plan`]).
    fault: FaultPlan,
    /// Lifetime job-execution counter (drives `panic-job=N` injection).
    job_seq: AtomicU64,
    /// Retry budget for retryable job failures.
    retries: u32,
    /// Backoff unit between retries (linear: attempt × unit).
    retry_backoff: Duration,
    /// Per-job wall-clock watchdog deadline.
    deadline: Option<Duration>,
    /// Jobs that overran the deadline (reported, not killed: the
    /// simulator's fuel budget is the hard stop; the watchdog names slow
    /// jobs so mis-sized budgets are visible).
    deadline_exceeded: AtomicU64,
    progress: Progress,
    /// Single-flight table: cache key → slot the leader publishes into.
    /// See [`Engine::sim_app_shared`].
    inflight: Mutex<HashMap<u64, Arc<InflightSlot>>>,
}

/// One in-flight simulation: the leader publishes into `state` and
/// notifies; followers wait (bounded by their own deadline).
struct InflightSlot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

/// Lifecycle of an [`InflightSlot`].
enum SlotState {
    /// The leader is still computing.
    Pending,
    /// Terminal result, shared with every follower.
    Done(Result<LaunchStats, JobError>),
    /// The leader was cancelled — a fact about *its* deadline or drain
    /// token, not about the job. Followers re-contend (one becomes the
    /// new leader) instead of inheriting a cancellation that isn't
    /// theirs.
    Retired,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new()
    }
}

/// The process-wide engine used by the harness and bench binaries.
static GLOBAL: OnceLock<Engine> = OnceLock::new();

impl Engine {
    /// Default worker bound: `CATT_ENGINE_WORKERS` or
    /// `available_parallelism()`.
    fn default_workers() -> usize {
        std::env::var("CATT_ENGINE_WORKERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            })
    }

    /// Retry budget: `CATT_ENGINE_RETRIES` or 2.
    fn default_retries() -> u32 {
        std::env::var("CATT_ENGINE_RETRIES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2)
    }

    /// Watchdog deadline: `CATT_JOB_DEADLINE_MS` or none.
    fn default_deadline() -> Option<Duration> {
        std::env::var("CATT_JOB_DEADLINE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&ms: &u64| ms > 0)
            .map(Duration::from_millis)
    }

    /// Assemble an engine from a cache mode plus the environment knobs
    /// (workers, retries, deadline, progress, fault plan).
    fn build(workers: usize, mode: CacheMode) -> Engine {
        let fault = FaultPlan::from_env();
        let engine = Engine {
            workers: workers.max(1),
            cache: SimCache::new(mode),
            fault,
            job_seq: AtomicU64::new(0),
            retries: Self::default_retries(),
            retry_backoff: Duration::from_millis(10),
            deadline: Self::default_deadline(),
            deadline_exceeded: AtomicU64::new(0),
            progress: Progress::from_env(),
            inflight: Mutex::new(HashMap::new()),
        };
        if engine.fault.corrupt_cache {
            engine.cache.arm_corruption();
        }
        engine
    }

    /// Engine with an in-memory cache and the default worker bound.
    pub fn new() -> Engine {
        Self::build(Self::default_workers(), CacheMode::Memory)
    }

    /// Engine with an explicit worker bound (clamped to ≥ 1) and an
    /// in-memory cache.
    pub fn with_workers(workers: usize) -> Engine {
        Self::build(workers, CacheMode::Memory)
    }

    /// Engine whose cache persists as JSONL under `dir` (loaded eagerly,
    /// one checksummed line appended per miss, compacted atomically on
    /// load repair and [`Engine::flush_cache`]).
    pub fn persistent(dir: impl Into<PathBuf>) -> Engine {
        Self::build(Self::default_workers(), CacheMode::Persistent(dir.into()))
    }

    /// Engine with caching disabled (every job simulates).
    pub fn uncached() -> Engine {
        Self::build(Self::default_workers(), CacheMode::Off)
    }

    /// Replace the fault plan (builder-style; used by the fault-injection
    /// tests — production engines read `CATT_FAULT_PLAN` on construction).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Engine {
        if plan.corrupt_cache {
            self.cache.arm_corruption();
        }
        self.fault = plan;
        self
    }

    /// Replace the retry policy (builder-style).
    pub fn with_retry_policy(mut self, retries: u32, backoff: Duration) -> Engine {
        self.retries = retries;
        self.retry_backoff = backoff;
        self
    }

    /// Replace the watchdog deadline (builder-style).
    pub fn with_deadline(mut self, deadline: Option<Duration>) -> Engine {
        self.deadline = deadline;
        self
    }

    /// Replace the progress mode (builder-style).
    pub fn with_progress(mut self, progress: Progress) -> Engine {
        self.progress = progress;
        self
    }

    /// Engine honoring the `CATT_SIMCACHE` environment variable, with
    /// `default_mode` applied when it is unset.
    fn from_env(default_mode: CacheMode) -> Engine {
        let mode = match std::env::var("CATT_SIMCACHE").as_deref() {
            Ok("off") => CacheMode::Off,
            Ok("mem") => CacheMode::Memory,
            Ok(dir) if !dir.is_empty() => CacheMode::Persistent(PathBuf::from(dir)),
            _ => default_mode,
        };
        Self::build(Self::default_workers(), mode)
    }

    /// The process-wide engine. Defaults to an in-memory cache (tests and
    /// library users get memoization without touching the filesystem);
    /// bench binaries call [`Engine::init_global_persistent`] first to
    /// get the JSONL layer. `CATT_SIMCACHE` overrides either way.
    pub fn global() -> &'static Engine {
        GLOBAL.get_or_init(|| Engine::from_env(CacheMode::Memory))
    }

    /// Initialize the process-wide engine with the persistent cache under
    /// `results/.simcache/` (relative to the working directory) and return
    /// it. Call once at the top of a bench binary's `main`; a no-op if the
    /// global engine already exists.
    pub fn init_global_persistent() -> &'static Engine {
        GLOBAL.get_or_init(|| {
            Engine::from_env(CacheMode::Persistent(PathBuf::from("results/.simcache")))
        })
    }

    /// The worker-pool bound.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Cumulative cache counters.
    pub fn cache_counters(&self) -> CacheCounters {
        self.cache.counters()
    }

    /// Jobs that overran the `CATT_JOB_DEADLINE_MS` watchdog deadline.
    pub fn deadline_exceeded(&self) -> u64 {
        self.deadline_exceeded.load(Ordering::Relaxed)
    }

    /// The stderr verbosity this engine runs at.
    pub fn progress(&self) -> Progress {
        self.progress
    }

    /// The armed fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault
    }

    /// Print a one-line cache/pool summary to stderr (bench binaries call
    /// this after their last evaluation). Silent under
    /// `CATT_ENGINE_PROGRESS=off`.
    pub fn print_summary(&self) {
        if self.progress == Progress::Off {
            return;
        }
        let c = self.cache_counters();
        let mut extras = String::new();
        if c.skipped > 0 {
            extras.push_str(&format!(" | {} corrupt line(s) skipped", c.skipped));
        }
        let overdue = self.deadline_exceeded();
        if overdue > 0 {
            extras.push_str(&format!(" | {overdue} job(s) over deadline"));
        }
        eprintln!(
            "[engine] {} workers | simcache: {} hits / {} misses ({:.0}% hit){extras}",
            self.workers,
            c.hits,
            c.misses,
            c.hit_rate() * 100.0
        );
    }

    /// Execute one job body with fault injection, panic capture, and
    /// bounded retry-with-backoff for retryable failures.
    fn run_one<J, T, F>(&self, i: usize, job: &J, f: &F) -> Result<T, JobError>
    where
        F: Fn(usize, &J) -> Result<T, JobError>,
    {
        let max_attempts = 1 + self.retries;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let seq = self.job_seq.fetch_add(1, Ordering::Relaxed);
            let result = catch_unwind(AssertUnwindSafe(|| {
                if let Some(ms) = self.fault.delay_job_ms {
                    std::thread::sleep(Duration::from_millis(ms));
                }
                if self.fault.panic_at_job == Some(seq) {
                    panic!("fault injection: worker panic at job {seq}");
                }
                f(i, job)
            }))
            .unwrap_or_else(|payload| Err(JobError::from_panic(&format!("job #{i}"), payload)));
            match result {
                Err(e) if e.retryable && attempt < max_attempts => {
                    if self.progress == Progress::Full {
                        eprintln!(
                            "[engine] job #{i} attempt {attempt}/{max_attempts} failed \
                             (retryable): {} — backing off",
                            e.message
                        );
                    }
                    std::thread::sleep(self.retry_backoff * attempt);
                }
                final_result => return final_result,
            }
        }
    }

    /// Run `jobs` through `f` on the bounded pool. Results come back in
    /// job order; each job's panic is caught and surfaced as its own
    /// `Err`, retryable failures are retried with backoff, and the
    /// watchdog counts jobs that overran the wall-clock deadline. `label`
    /// names the batch in the stderr progress line.
    pub fn run_jobs<J, T, F>(&self, label: &str, jobs: &[J], f: F) -> Vec<Result<T, JobError>>
    where
        J: Sync,
        T: Send,
        F: Fn(usize, &J) -> Result<T, JobError> + Sync,
    {
        let total = jobs.len();
        if total == 0 {
            return Vec::new();
        }
        let started = Instant::now();
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<Result<T, JobError>>> = Vec::new();
        slots.resize_with(total, || None);
        let (tx, rx) = mpsc::channel::<(usize, Duration, Result<T, JobError>)>();
        let threads = self.workers.min(total);
        // Publish this batch's worker count to the simulator so per-launch
        // SM parallelism divides the machine instead of multiplying into
        // it (W workers × S SM threads): each job's launches derive their
        // SM thread budget as available_parallelism / active workers. The
        // RAII guard deregisters on any exit from this function — an
        // unwinding job must not leak the hint, or every later launch in
        // the process runs with a permanently shrunken thread budget.
        let _workers_hint = catt_sim::engine_workers_guard(threads);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                let next = &next;
                let f = &f;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let t0 = Instant::now();
                    let result = self.run_one(i, &jobs[i], f);
                    if tx.send((i, t0.elapsed(), result)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            let mut done = 0usize;
            while let Ok((i, took, result)) = rx.recv() {
                slots[i] = Some(result);
                done += 1;
                if let Some(deadline) = self.deadline {
                    if took > deadline {
                        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                        if self.progress >= Progress::Summary {
                            eprintln!(
                                "[engine] warning: {label} job #{i} took {took:.1?}, \
                                 over the {deadline:.1?} deadline"
                            );
                        }
                    }
                }
                if self.progress == Progress::Full {
                    let c = self.cache_counters();
                    eprint!(
                        "\r[engine] {label}: {done}/{total} jobs | cache {}h/{}m | last {:>6.1?}   ",
                        c.hits, c.misses, took
                    );
                }
            }
            if self.progress >= Progress::Summary {
                eprintln!(
                    "\r[engine] {label}: {total}/{total} jobs in {:.2?} on {} workers        ",
                    started.elapsed(),
                    threads
                );
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every job slot filled by the pool"))
            .collect()
    }

    /// Get-or-simulate one application run. The cache key is
    /// [`job_digest`] of `(scope, kernels, launch, config)`; on a miss (or
    /// for traced/uncacheable configs) `compute` runs — with panics
    /// converted into `Err` — and the result enters both cache layers.
    pub fn sim_app<F>(
        &self,
        scope: &str,
        kernels: &[Kernel],
        launches: &[LaunchConfig],
        config: &GpuConfig,
        compute: F,
    ) -> Result<LaunchStats, JobError>
    where
        F: FnOnce() -> LaunchStats,
    {
        let caught = |compute: F| {
            catch_unwind(AssertUnwindSafe(compute))
                .map_err(|payload| JobError::from_panic(scope, payload))
        };
        // Traced runs carry a request trace the cache does not store, and
        // profiled runs exist *for* their side-channel profile — a cache
        // hit would skip the simulation that produces it. Both bypass the
        // cache (and never pollute it: their `LaunchStats` are identical
        // to an unprofiled run's, but skipping the insert keeps the
        // bypass symmetric and the cache read-only under diagnostics).
        // Sanitized runs also bypass (and never populate) the cache: a
        // cache hit would skip the very checks sanitize mode exists for.
        if config.trace_requests || config.profile_enabled() || config.sanitize_enabled() {
            return caught(compute);
        }
        let key = job_digest(scope, kernels, launches, config)?;
        if let Some(stats) = self.cache.lookup(key) {
            return Ok(stats);
        }
        let stats = caught(compute)?;
        self.cache.insert(key, &stats);
        Ok(stats)
    }

    /// Like [`Engine::sim_app`], but with **single-flight dedupe**: when
    /// several callers submit the same job (same digest) concurrently,
    /// exactly one — the *leader* — simulates; the rest block on its slot
    /// and receive the identical result marked [`SimSource::Coalesced`].
    /// This is how `catt serve` collapses a stampede of identical
    /// submissions (across tenants) into one unit of simulation work.
    ///
    /// Differences from `sim_app`:
    /// * `compute` is fallible — the serve path surfaces [`SimError`]s as
    ///   typed failures instead of panicking; only `Ok` results enter the
    ///   cache, and failures propagate (cloned) to every coalesced waiter.
    /// * `wait_deadline` bounds a *follower's* wait. A leader is never
    ///   interrupted here (its own `GpuConfig::cancel` token bounds the
    ///   simulation); a follower whose deadline passes gets a fatal
    ///   `JobError` with code `"deadline"`.
    /// * A **cancelled leader retires the slot** instead of publishing:
    ///   its cancellation reflects its own deadline (or a drain), not the
    ///   job, so followers with unexpired deadlines re-contend — one
    ///   becomes the new leader and simulates under its own token —
    ///   rather than receiving a spurious cancellation for work that was
    ///   never attempted on their behalf.
    /// * Fault injection (`delay-job`, `panic-job`) applies to the leader's
    ///   compute, mirroring [`Engine::run_jobs`] workers.
    ///
    /// Bypass configs (trace / profile / sanitize) behave as in `sim_app`:
    /// computed directly, no cache, no dedupe.
    ///
    /// [`SimError`]: catt_sim::SimError
    pub fn sim_app_shared<F>(
        &self,
        scope: &str,
        kernels: &[Kernel],
        launches: &[LaunchConfig],
        config: &GpuConfig,
        wait_deadline: Option<Instant>,
        compute: F,
    ) -> Result<SimOutcome, JobError>
    where
        F: FnOnce() -> Result<LaunchStats, JobError>,
    {
        let injected = |compute: F| {
            let seq = self.job_seq.fetch_add(1, Ordering::Relaxed);
            catch_unwind(AssertUnwindSafe(|| {
                if let Some(ms) = self.fault.delay_job_ms {
                    std::thread::sleep(Duration::from_millis(ms));
                }
                if self.fault.panic_at_job == Some(seq) {
                    panic!("fault injection: worker panic at job {seq}");
                }
                compute()
            }))
            .unwrap_or_else(|payload| Err(JobError::from_panic(scope, payload)))
        };
        if config.trace_requests || config.profile_enabled() || config.sanitize_enabled() {
            return injected(compute).map(|stats| SimOutcome {
                stats,
                source: SimSource::Computed,
            });
        }
        let key = job_digest(scope, kernels, launches, config)?;
        // A request leads at most once (the leader branch returns), but a
        // follower can re-contend after a retired slot — hence the loop
        // and the Option around the one-shot compute closure.
        let mut compute = Some(compute);
        loop {
            // Decide leader vs. follower under the inflight lock. The
            // cache check lives inside the critical section: a leader
            // inserts into the cache *before* removing its inflight
            // entry, so "no entry" here implies any earlier leader's
            // result is already visible.
            let role = {
                let mut map = self.inflight.lock().unwrap();
                if let Some(slot) = map.get(&key.0) {
                    Err(Arc::clone(slot))
                } else if let Some(stats) = self.cache.lookup(key) {
                    return Ok(SimOutcome {
                        stats,
                        source: SimSource::CacheHit,
                    });
                } else {
                    let slot = Arc::new(InflightSlot {
                        state: Mutex::new(SlotState::Pending),
                        cv: Condvar::new(),
                    });
                    map.insert(key.0, Arc::clone(&slot));
                    Ok(slot)
                }
            };
            match role {
                Ok(slot) => {
                    // Leader: simulate, cache on success, publish
                    // unconditionally (followers must never hang), then
                    // retire the slot.
                    let result = injected(compute.take().expect("a request leads at most once"));
                    if let Ok(stats) = &result {
                        self.cache.insert(key, stats);
                    }
                    if matches!(&result, Err(e) if e.code == Some("cancelled")) {
                        // Cancelled leader: no verdict about the job, so
                        // nothing to publish. Remove the map entry first
                        // (re-contending followers must find a fresh
                        // leader or an empty slot, never this retired
                        // one), then wake the waiters to re-contend.
                        self.inflight.lock().unwrap().remove(&key.0);
                        *slot.state.lock().unwrap() = SlotState::Retired;
                        slot.cv.notify_all();
                    } else {
                        *slot.state.lock().unwrap() = SlotState::Done(result.clone());
                        slot.cv.notify_all();
                        self.inflight.lock().unwrap().remove(&key.0);
                    }
                    return result.map(|stats| SimOutcome {
                        stats,
                        source: SimSource::Computed,
                    });
                }
                Err(slot) => {
                    let mut state = slot.state.lock().unwrap();
                    loop {
                        match &*state {
                            SlotState::Done(result) => {
                                self.cache.coalesced.fetch_add(1, Ordering::Relaxed);
                                return result.clone().map(|stats| SimOutcome {
                                    stats,
                                    source: SimSource::Coalesced,
                                });
                            }
                            // Leader cancelled: drop the slot lock and
                            // re-contend from the top.
                            SlotState::Retired => break,
                            SlotState::Pending => {}
                        }
                        match wait_deadline {
                            None => state = slot.cv.wait(state).unwrap(),
                            Some(deadline) => {
                                let now = Instant::now();
                                if now >= deadline {
                                    return Err(JobError::fatal(
                                        scope,
                                        "deadline passed while waiting on an identical \
                                         in-flight simulation",
                                    )
                                    .with_code("deadline"));
                                }
                                let (guard, _) =
                                    slot.cv.wait_timeout(state, deadline - now).unwrap();
                                state = guard;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Flush the in-memory cache to its persistent backing now (a no-op
    /// for in-memory / disabled caches). `catt serve` calls this during
    /// graceful drain so a SIGTERM never costs acknowledged results.
    pub fn flush_cache(&self) {
        self.cache.persist();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catt_frontend::parse_kernel;

    fn kernel() -> Kernel {
        parse_kernel(
            "__global__ void k(float *a, int n) {
                 int i = blockIdx.x * blockDim.x + threadIdx.x;
                 if (i < n) { a[i] = a[i] * 2.0f; }
             }",
        )
        .unwrap()
    }

    #[test]
    fn job_order_is_preserved() {
        let engine = Engine::with_workers(4);
        let jobs: Vec<usize> = (0..64).collect();
        let out = engine.run_jobs("order", &jobs, |_, &j| Ok(j * 10));
        let got: Vec<usize> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, (0..64).map(|j| j * 10).collect::<Vec<_>>());
    }

    #[test]
    fn panics_become_job_errors() {
        let engine = Engine::with_workers(2);
        let jobs = vec![1u32, 2, 3];
        let out = engine.run_jobs("panics", &jobs, |_, &j| {
            if j == 2 {
                panic!("boom {j}");
            }
            Ok(j)
        });
        assert_eq!(out[0], Ok(1));
        assert_eq!(out[2], Ok(3));
        let err = out[1].as_ref().unwrap_err();
        assert!(err.message.contains("boom 2"), "{err}");
    }

    #[test]
    fn pool_never_exceeds_worker_bound() {
        use std::sync::atomic::AtomicIsize;
        let engine = Engine::with_workers(3);
        let live = AtomicIsize::new(0);
        let peak = AtomicIsize::new(0);
        let jobs: Vec<u32> = (0..40).collect();
        engine.run_jobs("bound", &jobs, |_, _| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(2));
            live.fetch_sub(1, Ordering::SeqCst);
            Ok(())
        });
        assert!(peak.load(Ordering::SeqCst) <= 3, "peak {:?}", peak);
    }

    #[test]
    fn run_jobs_publishes_engine_worker_count_to_the_simulator() {
        // The simulator's SM thread budget divides by the active worker
        // count; each job must observe at least this batch's pool size
        // (other concurrently-running test batches can only add to it).
        let engine = Engine::with_workers(3);
        let jobs: Vec<u32> = (0..6).collect();
        let out = engine.run_jobs("hint", &jobs, |_, _| Ok(catt_sim::engine_workers_hint()));
        for r in out {
            assert!(r.unwrap() >= 3);
        }
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let k = kernel();
        let launch = LaunchConfig::d1(4, 128);
        let config = GpuConfig::small();
        let a = job_digest("S", std::slice::from_ref(&k), &[launch], &config).unwrap();
        let b = job_digest("S", std::slice::from_ref(&k), &[launch], &config).unwrap();
        assert_eq!(a, b);
        // Scope, launch, and config all separate keys.
        let other_scope = job_digest("T", std::slice::from_ref(&k), &[launch], &config).unwrap();
        assert_ne!(a, other_scope);
        let other_launch = job_digest(
            "S",
            std::slice::from_ref(&k),
            &[LaunchConfig::d1(8, 128)],
            &config,
        )
        .unwrap();
        assert_ne!(a, other_launch);
        let mut capped = config.clone();
        capped.l1_cap_bytes = Some(2 * 1024);
        let other_config = job_digest("S", std::slice::from_ref(&k), &[launch], &capped).unwrap();
        assert_ne!(a, other_config);
    }

    #[test]
    fn sim_app_memoizes() {
        let engine = Engine::with_workers(2);
        let k = kernel();
        let launch = LaunchConfig::d1(1, 32);
        let config = GpuConfig::small();
        let mut calls = 0u32;
        let run = |calls: &mut u32| {
            *calls += 1;
            LaunchStats {
                cycles: 42,
                ..LaunchStats::default()
            }
        };
        let a = engine
            .sim_app("memo", std::slice::from_ref(&k), &[launch], &config, || {
                run(&mut calls)
            })
            .unwrap();
        let b = engine
            .sim_app("memo", std::slice::from_ref(&k), &[launch], &config, || {
                run(&mut calls)
            })
            .unwrap();
        assert_eq!(calls, 1, "second run must be served from cache");
        assert_eq!(a.cycles, b.cycles);
        let c = engine.cache_counters();
        assert_eq!((c.hits, c.misses), (1, 1));
    }

    #[test]
    fn sim_app_propagates_panics() {
        let engine = Engine::with_workers(1);
        let k = kernel();
        let launch = LaunchConfig::d1(1, 32);
        let config = GpuConfig::small();
        let err = engine
            .sim_app(
                "exploding",
                std::slice::from_ref(&k),
                &[launch],
                &config,
                || panic!("validation failed: device 3 vs host 4"),
            )
            .unwrap_err();
        assert!(err.message.contains("validation failed"), "{err}");
        assert_eq!(err.label, "exploding");
    }
}
