//! # Evaluation engine — bounded parallel simulation with a content-addressed cache
//!
//! The paper's evaluation (Tables 1–3, Figs. 2–10) re-runs the simulator
//! hundreds of times: a full BFTT sweep per application per cache
//! configuration, and the same (kernel, launch, config) points across
//! several figure binaries. Both structures are exploited here:
//!
//! * **Bounded worker pool** — simulation jobs run on at most
//!   [`Engine::workers`] OS threads (default: `available_parallelism()`),
//!   replacing the old one-unbounded-thread-per-candidate sweep. Results
//!   come back in job order regardless of completion order, and worker
//!   panics are caught and propagated as [`JobError`]s instead of
//!   poisoning the whole sweep.
//! * **Content-addressed simulation cache** — results are memoized under a
//!   stable digest of (lowered kernel programs, launch geometry,
//!   [`GpuConfig`], scope tag). An in-memory layer serves repeats within a
//!   process; an optional persistent JSONL layer under
//!   `results/.simcache/` makes warm re-runs of any table/figure binary
//!   near-instant. Traced runs (`GpuConfig::trace_requests`) bypass the
//!   cache — the request trace is diagnostic and deliberately not
//!   serialized.
//!
//! Environment knobs (read by [`Engine::global`] /
//! [`Engine::init_global_persistent`]):
//!
//! * `CATT_SIMCACHE=off` — disable caching entirely (force cold runs);
//! * `CATT_SIMCACHE=mem` — in-memory layer only, nothing persisted;
//! * `CATT_SIMCACHE=<dir>` — persist under `<dir>` instead of
//!   `results/.simcache/`;
//! * `CATT_ENGINE_WORKERS=<n>` — override the worker-pool bound.

use catt_ir::kernel::{Kernel, LaunchConfig};
use catt_sim::{Fnv64, GpuConfig, LaunchStats};
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// A simulation job failed: the closure panicked (failed validation,
/// lowering assert, out-of-range access) or returned an error itself.
#[derive(Debug, Clone, PartialEq)]
pub struct JobError {
    /// Which job failed (caller-supplied label, e.g. `"ATAX (n=4, m=0)"`).
    pub label: String,
    /// What went wrong.
    pub message: String,
}

impl JobError {
    /// Build an error for `label` out of a caught panic payload.
    fn from_panic(label: &str, payload: Box<dyn std::any::Any + Send>) -> JobError {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "job panicked (non-string payload)".to_string());
        JobError {
            label: label.to_string(),
            message,
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulation job `{}` failed: {}",
            self.label, self.message
        )
    }
}

impl std::error::Error for JobError {}

/// Cache hit/miss counters (cumulative over the engine's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Jobs answered from the in-memory or persistent layer.
    pub hits: u64,
    /// Jobs actually simulated.
    pub misses: u64,
}

impl CacheCounters {
    /// Hit fraction over all cache-eligible jobs (0 when none ran).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Stable identity of one simulation job. See [`job_digest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobKey(pub u64);

impl JobKey {
    fn hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

/// Content digest of a simulation job: `scope` (application + input
/// identity — the workload abbreviation for registry apps), the *lowered*
/// program of every kernel the job runs, the launch geometry, and the
/// full GPU configuration. Kernels are lowered here so that two sources
/// with identical lowering share one cache entry, and any change to the
/// lowering itself changes every digest (automatic invalidation).
pub fn job_digest(
    scope: &str,
    kernels: &[Kernel],
    launches: &[LaunchConfig],
    config: &GpuConfig,
) -> Result<JobKey, JobError> {
    let mut h = Fnv64::new();
    h.write_str("catt-simcache-v1").write_str(scope);
    for k in kernels {
        let program = catt_sim::lower(k).map_err(|e| JobError {
            label: scope.to_string(),
            message: format!("kernel `{}`: {e}", k.name),
        })?;
        h.write_debug(&program.content_digest());
    }
    h.write_debug(&launches);
    h.write_debug(&config.content_digest());
    Ok(JobKey(h.finish()))
}

/// Where cached results live.
enum CacheMode {
    /// No caching at all (every job simulates).
    Off,
    /// In-memory map only.
    Memory,
    /// In-memory map backed by a JSONL append log.
    Persistent(PathBuf),
}

/// The content-addressed simulation cache.
struct SimCache {
    mode: CacheMode,
    mem: Mutex<HashMap<u64, LaunchStats>>,
    /// Append handle for the persistent layer (lazily opened).
    log: Mutex<Option<fs::File>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SimCache {
    const FILE: &'static str = "cache.jsonl";

    fn new(mode: CacheMode) -> SimCache {
        let mem = match &mode {
            CacheMode::Persistent(dir) => Self::load(dir),
            _ => HashMap::new(),
        };
        SimCache {
            mode,
            mem: Mutex::new(mem),
            log: Mutex::new(None),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Read the JSONL log. Unparsable lines are skipped (treated as
    /// misses), so a truncated final line from a killed process never
    /// wedges the cache.
    fn load(dir: &Path) -> HashMap<u64, LaunchStats> {
        let mut map = HashMap::new();
        let Ok(text) = fs::read_to_string(dir.join(Self::FILE)) else {
            return map;
        };
        for line in text.lines() {
            let Some(key) = line
                .find("\"key\":\"")
                .and_then(|i| line.get(i + 7..i + 23))
                .and_then(|hexstr| u64::from_str_radix(hexstr, 16).ok())
            else {
                continue;
            };
            if let Some(stats) = LaunchStats::from_json_line(line) {
                map.insert(key, stats);
            }
        }
        map
    }

    fn lookup(&self, key: JobKey) -> Option<LaunchStats> {
        if matches!(self.mode, CacheMode::Off) {
            return None;
        }
        let found = self.mem.lock().unwrap().get(&key.0).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn insert(&self, key: JobKey, stats: &LaunchStats) {
        match &self.mode {
            CacheMode::Off => {}
            CacheMode::Memory => {
                self.mem.lock().unwrap().insert(key.0, stats.clone());
            }
            CacheMode::Persistent(dir) => {
                self.mem.lock().unwrap().insert(key.0, stats.clone());
                let mut log = self.log.lock().unwrap();
                if log.is_none() {
                    *log = fs::create_dir_all(dir)
                        .and_then(|_| {
                            fs::OpenOptions::new()
                                .create(true)
                                .append(true)
                                .open(dir.join(Self::FILE))
                        })
                        .map_err(|e| {
                            eprintln!(
                                "[engine] warning: cannot persist simcache under {}: {e}",
                                dir.display()
                            )
                        })
                        .ok();
                }
                if let Some(f) = log.as_mut() {
                    let _ = writeln!(
                        f,
                        "{{\"key\":\"{}\",{}}}",
                        key.hex(),
                        stats.to_json_fields()
                    );
                }
            }
        }
    }

    fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// The evaluation engine: a bounded worker pool plus the simulation cache.
pub struct Engine {
    workers: usize,
    cache: SimCache,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new()
    }
}

/// The process-wide engine used by the harness and bench binaries.
static GLOBAL: OnceLock<Engine> = OnceLock::new();

impl Engine {
    /// Default worker bound: `CATT_ENGINE_WORKERS` or
    /// `available_parallelism()`.
    fn default_workers() -> usize {
        std::env::var("CATT_ENGINE_WORKERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            })
    }

    /// Engine with an in-memory cache and the default worker bound.
    pub fn new() -> Engine {
        Engine {
            workers: Self::default_workers(),
            cache: SimCache::new(CacheMode::Memory),
        }
    }

    /// Engine with an explicit worker bound (clamped to ≥ 1) and an
    /// in-memory cache.
    pub fn with_workers(workers: usize) -> Engine {
        Engine {
            workers: workers.max(1),
            cache: SimCache::new(CacheMode::Memory),
        }
    }

    /// Engine whose cache persists as JSONL under `dir` (loaded eagerly,
    /// appended on every miss).
    pub fn persistent(dir: impl Into<PathBuf>) -> Engine {
        Engine {
            workers: Self::default_workers(),
            cache: SimCache::new(CacheMode::Persistent(dir.into())),
        }
    }

    /// Engine with caching disabled (every job simulates).
    pub fn uncached() -> Engine {
        Engine {
            workers: Self::default_workers(),
            cache: SimCache::new(CacheMode::Off),
        }
    }

    /// Engine honoring the `CATT_SIMCACHE` environment variable, with
    /// `default_mode` applied when it is unset.
    fn from_env(default_mode: CacheMode) -> Engine {
        let mode = match std::env::var("CATT_SIMCACHE").as_deref() {
            Ok("off") => CacheMode::Off,
            Ok("mem") => CacheMode::Memory,
            Ok(dir) if !dir.is_empty() => CacheMode::Persistent(PathBuf::from(dir)),
            _ => default_mode,
        };
        Engine {
            workers: Self::default_workers(),
            cache: SimCache::new(mode),
        }
    }

    /// The process-wide engine. Defaults to an in-memory cache (tests and
    /// library users get memoization without touching the filesystem);
    /// bench binaries call [`Engine::init_global_persistent`] first to
    /// get the JSONL layer. `CATT_SIMCACHE` overrides either way.
    pub fn global() -> &'static Engine {
        GLOBAL.get_or_init(|| Engine::from_env(CacheMode::Memory))
    }

    /// Initialize the process-wide engine with the persistent cache under
    /// `results/.simcache/` (relative to the working directory) and return
    /// it. Call once at the top of a bench binary's `main`; a no-op if the
    /// global engine already exists.
    pub fn init_global_persistent() -> &'static Engine {
        GLOBAL.get_or_init(|| {
            Engine::from_env(CacheMode::Persistent(PathBuf::from("results/.simcache")))
        })
    }

    /// The worker-pool bound.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Cumulative cache counters.
    pub fn cache_counters(&self) -> CacheCounters {
        self.cache.counters()
    }

    /// Print a one-line cache/pool summary to stderr (bench binaries call
    /// this after their last evaluation).
    pub fn print_summary(&self) {
        let c = self.cache_counters();
        eprintln!(
            "[engine] {} workers | simcache: {} hits / {} misses ({:.0}% hit)",
            self.workers,
            c.hits,
            c.misses,
            c.hit_rate() * 100.0
        );
    }

    /// Run `jobs` through `f` on the bounded pool. Results come back in
    /// job order; each job's panic is caught and surfaced as its own
    /// `Err`. `label` names the batch in the stderr progress line.
    pub fn run_jobs<J, T, F>(&self, label: &str, jobs: &[J], f: F) -> Vec<Result<T, JobError>>
    where
        J: Sync,
        T: Send,
        F: Fn(usize, &J) -> Result<T, JobError> + Sync,
    {
        let total = jobs.len();
        if total == 0 {
            return Vec::new();
        }
        let started = Instant::now();
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<Result<T, JobError>>> = Vec::new();
        slots.resize_with(total, || None);
        let (tx, rx) = mpsc::channel::<(usize, Duration, Result<T, JobError>)>();
        let threads = self.workers.min(total);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                let next = &next;
                let f = &f;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let t0 = Instant::now();
                    let result = catch_unwind(AssertUnwindSafe(|| f(i, &jobs[i]))).unwrap_or_else(
                        |payload| Err(JobError::from_panic(&format!("job #{i}"), payload)),
                    );
                    if tx.send((i, t0.elapsed(), result)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            let mut done = 0usize;
            while let Ok((i, took, result)) = rx.recv() {
                slots[i] = Some(result);
                done += 1;
                let c = self.cache_counters();
                eprint!(
                    "\r[engine] {label}: {done}/{total} jobs | cache {}h/{}m | last {:>6.1?}   ",
                    c.hits, c.misses, took
                );
            }
            eprintln!(
                "\r[engine] {label}: {total}/{total} jobs in {:.2?} on {} workers        ",
                started.elapsed(),
                threads
            );
        });
        slots
            .into_iter()
            .map(|s| s.expect("every job slot filled by the pool"))
            .collect()
    }

    /// Get-or-simulate one application run. The cache key is
    /// [`job_digest`] of `(scope, kernels, launch, config)`; on a miss (or
    /// for traced/uncacheable configs) `compute` runs — with panics
    /// converted into `Err` — and the result enters both cache layers.
    pub fn sim_app<F>(
        &self,
        scope: &str,
        kernels: &[Kernel],
        launches: &[LaunchConfig],
        config: &GpuConfig,
        compute: F,
    ) -> Result<LaunchStats, JobError>
    where
        F: FnOnce() -> LaunchStats,
    {
        let caught = |compute: F| {
            catch_unwind(AssertUnwindSafe(compute))
                .map_err(|payload| JobError::from_panic(scope, payload))
        };
        // Traced runs carry a request trace the cache does not store.
        if config.trace_requests {
            return caught(compute);
        }
        let key = job_digest(scope, kernels, launches, config)?;
        if let Some(stats) = self.cache.lookup(key) {
            return Ok(stats);
        }
        let stats = caught(compute)?;
        self.cache.insert(key, &stats);
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catt_frontend::parse_kernel;

    fn kernel() -> Kernel {
        parse_kernel(
            "__global__ void k(float *a, int n) {
                 int i = blockIdx.x * blockDim.x + threadIdx.x;
                 if (i < n) { a[i] = a[i] * 2.0f; }
             }",
        )
        .unwrap()
    }

    #[test]
    fn job_order_is_preserved() {
        let engine = Engine::with_workers(4);
        let jobs: Vec<usize> = (0..64).collect();
        let out = engine.run_jobs("order", &jobs, |_, &j| Ok(j * 10));
        let got: Vec<usize> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, (0..64).map(|j| j * 10).collect::<Vec<_>>());
    }

    #[test]
    fn panics_become_job_errors() {
        let engine = Engine::with_workers(2);
        let jobs = vec![1u32, 2, 3];
        let out = engine.run_jobs("panics", &jobs, |_, &j| {
            if j == 2 {
                panic!("boom {j}");
            }
            Ok(j)
        });
        assert_eq!(out[0], Ok(1));
        assert_eq!(out[2], Ok(3));
        let err = out[1].as_ref().unwrap_err();
        assert!(err.message.contains("boom 2"), "{err}");
    }

    #[test]
    fn pool_never_exceeds_worker_bound() {
        use std::sync::atomic::AtomicIsize;
        let engine = Engine::with_workers(3);
        let live = AtomicIsize::new(0);
        let peak = AtomicIsize::new(0);
        let jobs: Vec<u32> = (0..40).collect();
        engine.run_jobs("bound", &jobs, |_, _| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(2));
            live.fetch_sub(1, Ordering::SeqCst);
            Ok(())
        });
        assert!(peak.load(Ordering::SeqCst) <= 3, "peak {:?}", peak);
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let k = kernel();
        let launch = LaunchConfig::d1(4, 128);
        let config = GpuConfig::small();
        let a = job_digest("S", std::slice::from_ref(&k), &[launch], &config).unwrap();
        let b = job_digest("S", std::slice::from_ref(&k), &[launch], &config).unwrap();
        assert_eq!(a, b);
        // Scope, launch, and config all separate keys.
        let other_scope = job_digest("T", std::slice::from_ref(&k), &[launch], &config).unwrap();
        assert_ne!(a, other_scope);
        let other_launch = job_digest(
            "S",
            std::slice::from_ref(&k),
            &[LaunchConfig::d1(8, 128)],
            &config,
        )
        .unwrap();
        assert_ne!(a, other_launch);
        let mut capped = config.clone();
        capped.l1_cap_bytes = Some(2 * 1024);
        let other_config = job_digest("S", std::slice::from_ref(&k), &[launch], &capped).unwrap();
        assert_ne!(a, other_config);
    }

    #[test]
    fn sim_app_memoizes() {
        let engine = Engine::with_workers(2);
        let k = kernel();
        let launch = LaunchConfig::d1(1, 32);
        let config = GpuConfig::small();
        let mut calls = 0u32;
        let run = |calls: &mut u32| {
            *calls += 1;
            LaunchStats {
                cycles: 42,
                ..LaunchStats::default()
            }
        };
        let a = engine
            .sim_app("memo", std::slice::from_ref(&k), &[launch], &config, || {
                run(&mut calls)
            })
            .unwrap();
        let b = engine
            .sim_app("memo", std::slice::from_ref(&k), &[launch], &config, || {
                run(&mut calls)
            })
            .unwrap();
        assert_eq!(calls, 1, "second run must be served from cache");
        assert_eq!(a.cycles, b.cycles);
        let c = engine.cache_counters();
        assert_eq!((c.hits, c.misses), (1, 1));
    }

    #[test]
    fn sim_app_propagates_panics() {
        let engine = Engine::with_workers(1);
        let k = kernel();
        let launch = LaunchConfig::d1(1, 32);
        let config = GpuConfig::small();
        let err = engine
            .sim_app(
                "exploding",
                std::slice::from_ref(&k),
                &[launch],
                &config,
                || panic!("validation failed: device 3 vs host 4"),
            )
            .unwrap_err();
        assert!(err.message.contains("validation failed"), "{err}");
        assert_eq!(err.label, "exploding");
    }
}
