//! The staged pass pipeline: an explicit [`Pass`] trait, a
//! [`PassManager`] that runs each pass under `catch_unwind` (an escaped
//! panic becomes an `E030` diagnostic naming the pass, not a dead
//! process) and memoizes pass results content-addressed the way the
//! simcache memoizes simulations, plus the concrete compile passes
//! `parse → analyze → legalize → transform → emit`.
//!
//! Memoization is keyed on `(pass name, content digest)` — e.g. the
//! parse pass keys on the FNV-64 of the source text, the analyze pass
//! on the printed kernel + launch + GPU-config digest — so a repeat
//! compile of a hot source replays the cached result (including its
//! diagnostics) and skips straight to the uncached transform stage.
//! `CATT_PASS_CACHE=off` disables it; hit/miss counters are exposed
//! through [`pass_cache_stats`] and feed `BENCH_compile.json`.

use crate::analysis::{analyze_kernel, search_factors, KernelAnalysis, LoopAnalysis};
use crate::fault::FaultPlan;
use crate::transform::{tb_throttle, warp_throttle};
use catt_diag::{codes, Diagnostic};
use catt_frontend::parse_module_recover;
use catt_ir::kernel::{Kernel, LaunchConfig, Module};
use catt_ir::printer;
use catt_sim::digest::Fnv64;
use catt_sim::{GpuConfig, SMEM_CONFIGS_KB};
use std::any::Any;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, OnceLock};

/// One stage of the compile pipeline.
///
/// A pass consumes `&Input`, appends any number of typed diagnostics,
/// and either produces an output or fails (`None`, in which case at
/// least one error diagnostic explains why). Passes must be
/// deterministic in their declared [`Pass::cache_key`]: two inputs with
/// the same key must produce the same output and diagnostics, because
/// the pass manager will replay a cached result for the second one.
pub trait Pass {
    type Input: ?Sized;
    type Output: Clone + Send + 'static;

    /// Stable pass name (appears in diagnostics and cache stats).
    fn name(&self) -> &'static str;

    /// Content digest of everything the output depends on, or `None`
    /// for passes that must re-run every time (e.g. the transform pass,
    /// which honors the ambient fault plan).
    fn cache_key(&self, _input: &Self::Input) -> Option<u64> {
        None
    }

    /// Run the pass. Errors and warnings go into `diags`; a `None`
    /// return means the pipeline stops after this pass.
    fn run(&self, input: &Self::Input, diags: &mut Vec<Diagnostic>) -> Option<Self::Output>;
}

/// Cumulative hit/miss counters for one pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassStats {
    pub hits: u64,
    pub misses: u64,
}

/// Keep the memo bounded: compile inputs are few and small, but a
/// long-lived daemon must not grow without limit. Clear-on-full like
/// the simcache's admission policy, only simpler — the cache refills
/// from the hot working set within a handful of compiles.
const PASS_CACHE_CAP: usize = 512;

struct CacheEntry {
    /// `None` records a failed pass (so repeat submissions of a broken
    /// source replay its diagnostics without re-parsing).
    output: Option<Box<dyn Any + Send>>,
    diags: Vec<Diagnostic>,
}

fn cache() -> &'static Mutex<HashMap<(&'static str, u64), CacheEntry>> {
    static CACHE: OnceLock<Mutex<HashMap<(&'static str, u64), CacheEntry>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn stats() -> &'static Mutex<HashMap<&'static str, PassStats>> {
    static STATS: OnceLock<Mutex<HashMap<&'static str, PassStats>>> = OnceLock::new();
    STATS.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // A panic inside a pass can poison these locks (the pass manager
    // keeps going after catch_unwind); the data is counters + a memo,
    // both safe to keep using.
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Snapshot of every pass's cache counters, sorted by pass name.
pub fn pass_cache_stats() -> Vec<(&'static str, PassStats)> {
    let mut out: Vec<_> = lock(stats()).iter().map(|(k, v)| (*k, *v)).collect();
    out.sort_by_key(|(k, _)| *k);
    out
}

/// Drop every memoized pass result and zero the counters (tests and
/// benchmarks; a running daemon never needs this).
pub fn reset_pass_cache() {
    lock(cache()).clear();
    lock(stats()).clear();
}

/// Runs passes: panic containment + content-addressed memoization.
#[derive(Debug, Clone)]
pub struct PassManager {
    cache_enabled: bool,
}

impl Default for PassManager {
    fn default() -> PassManager {
        PassManager::from_env()
    }
}

impl PassManager {
    /// Honor `CATT_PASS_CACHE` (`off` / `0` / `false` disable; default on).
    pub fn from_env() -> PassManager {
        let cache_enabled = !matches!(
            std::env::var("CATT_PASS_CACHE").as_deref(),
            Ok("off") | Ok("0") | Ok("false")
        );
        PassManager { cache_enabled }
    }

    /// Explicit cache switch (tests).
    pub fn with_cache(cache_enabled: bool) -> PassManager {
        PassManager { cache_enabled }
    }

    pub fn cache_enabled(&self) -> bool {
        self.cache_enabled
    }

    /// Run `pass` on `input`. Cached results (outputs *and* their
    /// diagnostics) are replayed on a key match; otherwise the pass runs
    /// under `catch_unwind`, and an escaped panic is reported as an
    /// `E030` diagnostic carrying the pass name.
    pub fn run<P: Pass>(
        &self,
        pass: &P,
        input: &P::Input,
        diags: &mut Vec<Diagnostic>,
    ) -> Option<P::Output> {
        let key = if self.cache_enabled {
            pass.cache_key(input).map(|k| (pass.name(), k))
        } else {
            None
        };
        if let Some(key) = key {
            let guard = lock(cache());
            if let Some(entry) = guard.get(&key) {
                let output = entry
                    .output
                    .as_ref()
                    .and_then(|b| b.downcast_ref::<P::Output>())
                    .cloned();
                let cached_diags = entry.diags.clone();
                drop(guard);
                lock(stats()).entry(pass.name()).or_default().hits += 1;
                diags.extend(cached_diags);
                return output;
            }
        }

        let mut local: Vec<Diagnostic> = Vec::new();
        let result = catch_unwind(AssertUnwindSafe(|| pass.run(input, &mut local)));
        match result {
            Ok(output) => {
                for d in &mut local {
                    if d.pass.is_none() {
                        d.pass = Some(pass.name());
                    }
                }
                if let Some(key) = key {
                    lock(stats()).entry(pass.name()).or_default().misses += 1;
                    let mut guard = lock(cache());
                    if guard.len() >= PASS_CACHE_CAP {
                        guard.clear();
                    }
                    guard.insert(
                        key,
                        CacheEntry {
                            output: output
                                .as_ref()
                                .map(|o| Box::new(o.clone()) as Box<dyn Any + Send>),
                            diags: local.clone(),
                        },
                    );
                }
                diags.extend(local);
                output
            }
            Err(payload) => {
                // Never cache a panic: it may be environmental, and the
                // next run deserves a fresh attempt.
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                diags.extend(local);
                diags.push(
                    Diagnostic::error(
                        codes::PASS_PANICKED,
                        format!("internal error: pass `{}` panicked: {msg}", pass.name()),
                    )
                    .in_pass(pass.name()),
                );
                None
            }
        }
    }
}

// ---------------------------------------------------------------------
// Concrete passes.
// ---------------------------------------------------------------------

/// `parse`: source text → IR module (recovering parser; all frontend
/// diagnostics surface here). Cached on the FNV-64 of the source.
pub struct ParsePass;

impl Pass for ParsePass {
    type Input = str;
    type Output = Module;

    fn name(&self) -> &'static str {
        "parse"
    }

    fn cache_key(&self, input: &str) -> Option<u64> {
        let mut h = Fnv64::new();
        h.write_str(input);
        Some(h.finish())
    }

    fn run(&self, input: &str, diags: &mut Vec<Diagnostic>) -> Option<Module> {
        let outcome = parse_module_recover(input);
        let clean = outcome.is_clean();
        diags.extend(outcome.diagnostics);
        clean.then_some(outcome.module)
    }
}

/// `analyze`: kernel → occupancy plan + per-loop footprint decisions
/// (paper §4.1–4.3), including the Fig. 5 carve-out reconfiguration
/// when a TB throttle needs shared-memory space. Cached on the printed
/// kernel + launch + GPU-config digest.
pub struct AnalyzePass {
    pub config: GpuConfig,
    pub launch: LaunchConfig,
}

impl Pass for AnalyzePass {
    type Input = Kernel;
    type Output = KernelAnalysis;

    fn name(&self) -> &'static str {
        "analyze"
    }

    fn cache_key(&self, kernel: &Kernel) -> Option<u64> {
        let mut h = Fnv64::new();
        h.write_str(&printer::kernel_to_string(kernel));
        h.write_debug(&self.launch);
        h.write(&self.config.content_digest().to_le_bytes());
        Some(h.finish())
    }

    fn run(&self, kernel: &Kernel, diags: &mut Vec<Diagnostic>) -> Option<KernelAnalysis> {
        let program = match catt_sim::lower(kernel) {
            Ok(p) => p,
            Err(e) => {
                diags.push(
                    Diagnostic::error(codes::LOWERING_FAILED, e.to_string())
                        .with_span(kernel.spans.name),
                );
                return None;
            }
        };
        let Some(mut analysis) =
            analyze_kernel(kernel, self.launch, &self.config, program.num_regs as u32)
        else {
            diags.push(
                Diagnostic::error(
                    codes::UNLAUNCHABLE,
                    format!("kernel `{}` cannot launch on the target", kernel.name),
                )
                .with_span(kernel.spans.name),
            );
            return None;
        };

        // When any loop needs TB-level throttling on a kernel without free
        // shared-memory space, the carve-out must be reconfigured (§4.3).
        // Follow the paper's Fig. 5 setting: largest carve-out, 32 KB L1D,
        // and re-run the factor search against that capacity.
        if analysis.tb_throttle_m() > 0 && analysis.plan.smem_carveout_bytes == 0 {
            let max_kb = SMEM_CONFIGS_KB.last().copied().unwrap_or(96);
            let mut cfg = self.config.clone();
            cfg.smem_carveout_bytes = max_kb * 1024;
            let l1d_lines = (cfg.l1d_bytes() / cfg.l1_line_bytes) as u64;
            for l in &mut analysis.loops {
                if l.decision.m > 0 {
                    let per_round: u64 = l.accesses.iter().map(|a| a.req_warp as u64).sum();
                    l.decision = search_factors(
                        per_round,
                        analysis.warps_per_tb,
                        analysis.plan.resident_tbs,
                        l1d_lines,
                    );
                }
            }
            analysis.plan.config = cfg;
            analysis.plan.smem_carveout_bytes = max_kb * 1024;
            analysis.plan.l1d_bytes = analysis.plan.config.l1d_bytes();
        }
        Some(analysis)
    }
}

/// The legalized throttling plan: which transforms will actually be
/// applied, after every legality rejection has been reported.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LegalPlan {
    /// `(loop_id, N)` warp throttles, outermost selected loops only.
    pub warp: Vec<(usize, u32)>,
    /// `(target resident TBs, carve-out bytes)` for the kernel-wide TB
    /// throttle, when one is needed.
    pub tb: Option<(u32, u32)>,
}

impl LegalPlan {
    /// Whether the plan changes the kernel at all.
    pub fn is_identity(&self) -> bool {
        self.warp.is_empty() && self.tb.is_none()
    }
}

/// `legalize`: analysis decisions → concrete transform plan. Every
/// loop the analysis wanted to throttle but legality rejects is
/// reported as a warning naming the loop's source span (`W010` barrier,
/// `W011` divergent guard, `W012` unresolved factors).
pub struct LegalizePass;

impl Pass for LegalizePass {
    type Input = (Kernel, KernelAnalysis);
    type Output = LegalPlan;

    fn name(&self) -> &'static str {
        "legalize"
    }

    fn run(
        &self,
        (kernel, analysis): &(Kernel, KernelAnalysis),
        diags: &mut Vec<Diagnostic>,
    ) -> Option<LegalPlan> {
        Some(legalize(kernel, analysis, diags))
    }
}

fn loop_warning(
    kernel: &Kernel,
    l: &LoopAnalysis,
    code: catt_diag::Code,
    msg: String,
) -> Diagnostic {
    let mut d = Diagnostic::warning(code, msg);
    if let Some(span) = kernel.spans.loop_span(l.loop_id) {
        d = d.with_span(span);
    } else {
        d = d.with_span(kernel.spans.name);
    }
    d
}

/// Select the transforms the analysis decisions legally permit, with a
/// typed warning for every rejection. This is the selection logic that
/// used to live inline in `apply_decisions`.
pub fn legalize(
    kernel: &Kernel,
    analysis: &KernelAnalysis,
    diags: &mut Vec<Diagnostic>,
) -> LegalPlan {
    // Report loops whose contention even maximum throttling cannot fix
    // (the CORR case, §5.1) — they stay untouched by design.
    for l in &analysis.loops {
        if !l.decision.resolved {
            diags.push(loop_warning(
                kernel,
                l,
                codes::LOOP_UNRESOLVED,
                format!(
                    "loop #{} stays unthrottled: even maximum throttling cannot fit its \
                     footprint in the L1D",
                    l.loop_id
                ),
            ));
        }
    }

    // Select loops: resolved, n > 1, no barrier, a block-uniform guard
    // (spliced barriers under divergent control flow deadlock on real
    // hardware), and no throttled ancestor.
    let wants_warp: Vec<&LoopAnalysis> = analysis
        .loops
        .iter()
        .filter(|l| l.decision.is_throttled() && l.decision.n > 1)
        .collect();
    let mut throttled: Vec<&LoopAnalysis> = Vec::new();
    for l in &wants_warp {
        if l.has_barrier {
            diags.push(loop_warning(
                kernel,
                l,
                codes::LOOP_SKIPPED_BARRIER,
                format!(
                    "loop #{} needs warp throttling (N={}) but contains a barrier; \
                     splitting it would interleave barrier sites",
                    l.loop_id, l.decision.n
                ),
            ));
        } else if l.divergent_guard {
            diags.push(loop_warning(
                kernel,
                l,
                codes::LOOP_SKIPPED_DIVERGENT,
                format!(
                    "loop #{} needs warp throttling (N={}) but sits under a \
                     thread-divergent guard; a spliced barrier would deadlock",
                    l.loop_id, l.decision.n
                ),
            ));
        } else {
            throttled.push(l);
        }
    }
    let warp: Vec<(usize, u32)> = throttled
        .iter()
        .filter(|l| {
            // Walk ancestors; drop if any ancestor is itself selected.
            let mut p = l.parent;
            while let Some(pid) = p {
                if throttled.iter().any(|t| t.loop_id == pid) {
                    return false;
                }
                p = analysis
                    .loops
                    .iter()
                    .find(|x| x.loop_id == pid)
                    .and_then(|x| x.parent);
            }
            true
        })
        .map(|l| (l.loop_id, l.decision.n))
        .collect();

    let m = analysis.tb_throttle_m();
    let tb = (m > 0 && m < analysis.plan.resident_tbs).then(|| {
        (
            analysis.plan.resident_tbs - m,
            analysis.plan.config.smem_carveout_bytes,
        )
    });

    LegalPlan { warp, tb }
}

/// What the transform stage produced: the (possibly) rewritten kernel,
/// plus the structured fallback diagnostic when the transform had to be
/// abandoned and the original code is used instead.
#[derive(Debug, Clone)]
pub struct TransformOutcome {
    pub kernel: Kernel,
    pub fallback: Option<Diagnostic>,
}

/// `transform`: apply the legalized plan with a guard rail — a
/// transform that panics or produces a kernel that no longer lowers
/// falls back to the *original* code (correct, merely unthrottled) with
/// a typed `W001`/`W002` diagnostic. Never cached: it honors the
/// ambient fault plan.
pub struct TransformPass {
    pub fault: FaultPlan,
}

impl Pass for TransformPass {
    type Input = (Kernel, KernelAnalysis, LegalPlan);
    type Output = TransformOutcome;

    fn name(&self) -> &'static str {
        "transform"
    }

    fn run(
        &self,
        (kernel, analysis, plan): &(Kernel, KernelAnalysis, LegalPlan),
        _diags: &mut Vec<Diagnostic>,
    ) -> Option<TransformOutcome> {
        if self.fault.fail_transform {
            return Some(TransformOutcome {
                kernel: kernel.clone(),
                fallback: Some(
                    Diagnostic::warning(
                        codes::FAULT_FALLBACK,
                        "fault injection: transform forced to fail",
                    )
                    .with_span(kernel.spans.name),
                ),
            });
        }
        match catch_unwind(AssertUnwindSafe(|| apply_plan(kernel, analysis, plan))) {
            Ok(transformed) => match catt_sim::lower(&transformed) {
                Ok(_) => Some(TransformOutcome {
                    kernel: transformed,
                    fallback: None,
                }),
                Err(e) => Some(TransformOutcome {
                    kernel: kernel.clone(),
                    fallback: Some(
                        Diagnostic::warning(
                            codes::TRANSFORM_FALLBACK,
                            format!("transformed kernel fails to lower: {e}"),
                        )
                        .with_span(kernel.spans.name),
                    ),
                }),
            },
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                Some(TransformOutcome {
                    kernel: kernel.clone(),
                    fallback: Some(
                        Diagnostic::warning(
                            codes::TRANSFORM_FALLBACK,
                            format!("transform panicked: {msg}"),
                        )
                        .with_span(kernel.spans.name),
                    ),
                })
            }
        }
    }
}

/// Apply a legalized plan: warp throttles from the highest loop id down
/// (so earlier ids stay valid while later subtrees get duplicated),
/// then the kernel-wide TB throttle.
pub fn apply_plan(kernel: &Kernel, analysis: &KernelAnalysis, plan: &LegalPlan) -> Kernel {
    let mut out = kernel.clone();
    let mut ordered = plan.warp.clone();
    ordered.sort_by_key(|&(id, _)| std::cmp::Reverse(id));
    for (id, n) in ordered {
        if let Some(t) = warp_throttle(&out, id, n, analysis.warps_per_tb) {
            out = t;
        }
    }
    if let Some((target, carveout)) = plan.tb {
        if let Some(t) = tb_throttle(&out, target, carveout, kernel.shared_mem_bytes()) {
            out = t;
        }
    }
    out
}

/// `emit`: kernel → CUDA source (the pretty printer; cannot fail).
pub struct EmitPass;

impl Pass for EmitPass {
    type Input = Kernel;
    type Output = String;

    fn name(&self) -> &'static str {
        "emit"
    }

    fn run(&self, kernel: &Kernel, _diags: &mut Vec<Diagnostic>) -> Option<String> {
        Some(printer::kernel_to_string(kernel))
    }
}
