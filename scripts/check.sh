#!/usr/bin/env sh
# Repository checks: formatting, lints, and the tier-1 build + test gate.
# Usage: scripts/check.sh [--offline]
# Pass --offline (default in the sandboxed build environment) to forbid
# registry access; the workspace is dependency-free so this always works.
set -eu

cd "$(dirname "$0")/.."

OFFLINE="--offline"
if [ "${1:-}" = "--online" ]; then
    OFFLINE=""
fi

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets $OFFLINE -- -D warnings

echo "==> tier-1: cargo build --release && cargo test"
cargo build --release --workspace $OFFLINE
cargo test --release --workspace $OFFLINE -q

echo "==> all checks passed"
