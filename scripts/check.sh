#!/usr/bin/env sh
# Repository checks: formatting, lints, and the tier-1 build + test gate.
# Usage: scripts/check.sh [--offline]
# Pass --offline (default in the sandboxed build environment) to forbid
# registry access; the workspace is dependency-free so this always works.
set -eu

cd "$(dirname "$0")/.."

OFFLINE="--offline"
if [ "${1:-}" = "--online" ]; then
    OFFLINE=""
fi

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets $OFFLINE -- -D warnings

echo "==> tier-1: cargo build --release && cargo test"
cargo build --release --workspace $OFFLINE
cargo test --release --workspace $OFFLINE -q

echo "==> guard rails: no panic!/bare assert! on the simulator execution path"
# The execution path must fail through SimError, not panics. Strip test
# modules (everything from the #[cfg(test)] marker on) before grepping;
# debug_assert! stays allowed (compiled out of release).
for f in crates/sim/src/sm.rs crates/sim/src/mem.rs crates/sim/src/warp.rs \
         crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/profile.rs \
         crates/sim/src/sanitize.rs crates/verify/src/lib.rs \
         crates/verify/src/generate.rs crates/verify/src/oracle.rs \
         crates/verify/src/shrink.rs crates/verify/src/corpus.rs \
         crates/verify/src/frontfuzz.rs \
         crates/core/src/swizzle.rs crates/tune/src/lib.rs \
         crates/frontend/src/lexer.rs crates/frontend/src/parser.rs \
         crates/frontend/src/lib.rs crates/diag/src/lib.rs \
         crates/diag/src/span.rs crates/diag/src/codes.rs; do
    [ -f "$f" ] || continue
    if sed -n '1,/#\[cfg(test)\]/p' "$f" | grep -vE '^[[:space:]]*//' \
        | grep -nE '(^|[^_a-zA-Z])(panic!|assert!|assert_eq!|assert_ne!|unreachable!|todo!|unimplemented!)\(' ; then
        echo "error: panic/assert on the execution path in $f (use SimError)" >&2
        exit 1
    fi
done

echo "==> parallel-SM equivalence: default (parallel) environment"
# The suite pins both execution modes through explicit GpuConfig fields,
# so it is env-proof; the two passes additionally exercise the env knob
# parsing and the sequential fallback across the sim suites.
cargo test --release -p catt-sim $OFFLINE -q --test parallel_sm

echo "==> parallel-SM equivalence: sequential-fallback environment"
CATT_SIM_SM_PARALLEL=off CATT_SIM_SM_THREADS=1 CATT_SIM_STEAL=off \
    cargo test --release -p catt-sim $OFFLINE -q \
    --test parallel_sm --test determinism

echo "==> fault injection: sweep + cache survive an armed CATT_FAULT_PLAN"
CATT_ENGINE_WORKERS=1 CATT_FAULT_PLAN="panic-job=2,corrupt-cache" \
    cargo test --release -p catt-core $OFFLINE -q --test fault_env

echo "==> fuzz smoke: fixed-seed differential campaign + corpus replay"
# Legal-mode translation validation must find nothing, the recorded
# counterexample corpus must replay clean (the --corpus pass does both),
# and the report must be byte-identical across runs (determinism).
FUZZ_OUT_A="${FUZZ_OUT_A:-target/fuzz-smoke-a.txt}"
FUZZ_OUT_B="${FUZZ_OUT_B:-target/fuzz-smoke-b.txt}"
target/release/catt fuzz --seed 1 --iters 200 --corpus tests/corpus > "$FUZZ_OUT_A"
grep -q "violations .............. 0" "$FUZZ_OUT_A" || {
    echo "error: catt fuzz found violations (see $FUZZ_OUT_A)" >&2
    exit 1
}
grep -q "corpus replay:" "$FUZZ_OUT_A" || {
    echo "error: catt fuzz skipped the corpus replay" >&2
    exit 1
}
target/release/catt fuzz --seed 1 --iters 200 > "$FUZZ_OUT_B"
# Second run omits the replay lines; compare the report body only.
if ! [ "$(grep -v '^corpus replay' "$FUZZ_OUT_A")" = "$(cat "$FUZZ_OUT_B")" ]; then
    echo "error: catt fuzz report is not deterministic" >&2
    diff "$FUZZ_OUT_A" "$FUZZ_OUT_B" >&2 || true
    exit 1
fi

echo "==> frontend-fuzz smoke: fixed-seed mutational lexer/parser campaign"
# The frontend contract on arbitrary input: no panics, every rejection
# carries an error diagnostic, every span in bounds. Deterministic:
# same seed ⇒ byte-identical report.
FRONT_OUT="${FRONT_OUT:-target/frontfuzz-smoke.txt}"
target/release/catt fuzz --frontend --seed 1 --iters 300 > "$FRONT_OUT"
grep -q "violations .............. 0" "$FRONT_OUT" || {
    echo "error: catt fuzz --frontend found violations (see $FRONT_OUT)" >&2
    exit 1
}
grep -q "rejected with errors" "$FRONT_OUT" || {
    echo "error: catt fuzz --frontend produced no report" >&2
    exit 1
}

echo "==> profile smoke: catt profile emits reports + a valid Chrome trace"
# The CLI validates the trace JSON and re-checks the stall-sum /
# L1-counter reconciliation itself, exiting non-zero on any violation;
# this pass just has to run it and check the artifact exists.
PROFILE_TRACE="${PROFILE_TRACE:-target/profile-smoke-trace.json}"
target/release/catt profile ATAX --trace-out "$PROFILE_TRACE" > /dev/null
[ -s "$PROFILE_TRACE" ] || {
    echo "error: catt profile wrote no trace at $PROFILE_TRACE" >&2
    exit 1
}

echo "==> tune smoke: fixed-seed autotune run with self-check invariants"
# The CLI re-runs TuneReport::self_check on every report (tuned is the
# argmin of the selectable trace, never slower than baseline or static
# CATT, iteration bound respected, swizzle selection backed by the L2
# gain) and exits non-zero on violation. DM must tune to the tile-major
# CTA swizzle that pure throttling cannot find.
TUNE_OUT="${TUNE_OUT:-target/tune-smoke.json}"
TUNE_TXT="${TUNE_TXT:-target/tune-smoke.txt}"
target/release/catt tune DM,ATAX --out "$TUNE_OUT" > "$TUNE_TXT"
grep -q "tile=" "$TUNE_TXT" || {
    echo "error: catt tune did not select the CTA swizzle on DM (see $TUNE_TXT)" >&2
    exit 1
}
[ -s "$TUNE_OUT" ] || {
    echo "error: catt tune wrote no summary at $TUNE_OUT" >&2
    exit 1
}

echo "==> serve smoke: NDJSON daemon answers every line and drains clean"
# A checked-in request batch (good submit, malformed line, unknown kernel,
# zero grid, zero deadline, probes, shutdown) piped through the stdio
# daemon under an armed chaos plan. The contract: one typed response per
# request line, at least one success and one typed error, clean exit.
SERVE_OUT="${SERVE_OUT:-target/serve-smoke-out.jsonl}"
CATT_FAULT_PLAN="delay-job=2" CATT_SERVE_WORKERS=2 \
    target/release/catt serve --stdio < scripts/serve-smoke.jsonl > "$SERVE_OUT"
REQ_LINES=$(grep -c . scripts/serve-smoke.jsonl)
RESP_LINES=$(grep -c . "$SERVE_OUT")
if [ "$REQ_LINES" != "$RESP_LINES" ]; then
    echo "error: catt serve answered $RESP_LINES of $REQ_LINES request lines" >&2
    cat "$SERVE_OUT" >&2
    exit 1
fi
grep -q '"id":"ok-1","ok":true' "$SERVE_OUT" || {
    echo "error: catt serve smoke: the valid submit did not succeed" >&2
    cat "$SERVE_OUT" >&2
    exit 1
}
grep -q '"id":"bad-1","ok":false' "$SERVE_OUT" || {
    echo "error: catt serve smoke: malformed line not answered as bad-request" >&2
    cat "$SERVE_OUT" >&2
    exit 1
}

echo "==> all checks passed"
