#!/usr/bin/env bash
# Simulator wall-clock benchmark: sequential vs parallel per-SM execution.
# Writes BENCH_sim.json at the repo root (see bench_summary --help text in
# crates/bench/src/bin/bench_summary.rs for knobs). Non-gating — CI runs
# this as an artifact step; local runs track the speedup trajectory.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p catt-bench --bin bench_summary
exec target/release/bench_summary "$@"
