//! Bring-your-own-kernel: analyze and throttle a user-written CUDA kernel
//! on a custom GPU configuration — the workflow a downstream user of the
//! library would follow for code that is not in the benchmark registry.
//!
//! The kernel is a dense stencil-times-matrix sweep with a tunable row
//! stride; the example shows how the CATT decision flips from "leave
//! alone" to "throttle" as the stride (and with it the inter-thread
//! distance) grows.
//!
//! Run with `cargo run --release --example custom_kernel`.

use catt_repro::core::Pipeline;
use catt_repro::ir::LaunchConfig;
use catt_repro::sim::GpuConfig;

fn main() {
    // An older-generation-style GPU: 32 KB L1D cap (the paper's §5.1.3
    // argues CATT matters most on small caches).
    let mut config = GpuConfig::titan_v_1sm();
    config.l1_cap_bytes = Some(32 * 1024);
    let pipe = Pipeline::new(config);
    let launch = LaunchConfig::d1(4, 256);

    println!("stride | C_tid | REQ_warp | contended | CATT TLP (warps, TBs)");
    println!("-------+-------+----------+-----------+----------------------");
    for stride in [1u32, 4, 8, 32, 128] {
        let src = format!(
            "__global__ void sweep(float *A, float *out, int n) {{
                 int i = blockIdx.x * blockDim.x + threadIdx.x;
                 if (i < n) {{
                     for (int j = 0; j < 64; j++) {{
                         out[i] += A[i * {stride} + j];
                     }}
                 }}
             }}"
        );
        let app = pipe
            .compile_source(&src, &[("sweep", launch)])
            .expect("compile");
        let a = &app.kernels[0].analysis;
        let l = &a.loops[0];
        let acc = l
            .accesses
            .iter()
            .find(|x| x.array == "A")
            .expect("A access");
        println!(
            "{:>6} | {:>5} | {:>8} | {:>9} | {:?}",
            stride,
            acc.c_tid.map(|v| v.to_string()).unwrap_or("?".into()),
            acc.req_warp,
            l.contended,
            l.tlp(a.warps_per_tb, a.plan.resident_tbs),
        );
    }
    println!();
    println!(
        "Reading the table: a stride of 1 coalesces perfectly (one 128-byte line\n\
         per warp); by stride 32 every lane touches its own line (REQ_warp = 32)\n\
         and the footprint of 32 concurrent warps no longer fits a 32 KB L1D, so\n\
         CATT serializes warp groups until it does."
    );
}
