//! Quickstart: compile a divergent kernel with CATT, inspect the analysis
//! and the transformed source, and measure the effect on the simulator.
//!
//! Run with `cargo run --release --example quickstart`.

use catt_repro::core::Pipeline;
use catt_repro::ir::LaunchConfig;
use catt_repro::sim::{Arg, GlobalMem, Gpu, GpuConfig};

fn main() {
    // The paper's Fig. 1 kernel, at simulator scale (1024 rows of 96
    // columns): each thread walks one row, so adjacent threads are 96
    // elements apart — fully divergent accesses that thrash the L1D.
    let n_rows = 1024u32;
    let n_cols = 96u32;
    let src = format!(
        "#define NX {n_rows}
         #define NY {n_cols}
         __global__ void atax_kernel1(float *A, float *x, float *tmp) {{
             int i = blockIdx.x * blockDim.x + threadIdx.x;
             if (i < NX) {{
                 for (int j = 0; j < NY; j++) {{
                     tmp[i] += A[i * NY + j] * x[j];
                 }}
             }}
         }}"
    );
    let launch = LaunchConfig::d1(n_rows / 256, 256);

    // 1. Compile with CATT for a single-SM Titan V.
    let config = GpuConfig::titan_v_1sm();
    let pipe = Pipeline::new(config.clone());
    let app = pipe
        .compile_source(&src, &[("atax_kernel1", launch)])
        .expect("compilation");
    let ck = &app.kernels[0];

    println!("=== CATT analysis ===");
    let a = &ck.analysis;
    println!(
        "kernel `{}`: baseline TLP (warps, TBs) = {:?}, L1D = {} KB, regs/thread = {}",
        a.kernel_name,
        a.baseline_tlp(),
        a.plan.l1d_bytes / 1024,
        a.regs_per_thread
    );
    for l in &a.loops {
        println!(
            "  loop {}: footprint {} lines, contended = {}, decision N={} M={} -> TLP {:?}",
            l.loop_id,
            l.size_req_lines,
            l.contended,
            l.decision.n,
            l.decision.m,
            l.tlp(a.warps_per_tb, a.plan.resident_tbs)
        );
    }

    println!("\n=== transformed source ===\n{}", ck.emitted_source);

    // 2. Run both versions on the simulator and compare.
    let run = |kernel: &catt_repro::ir::Kernel| {
        let mut mem = GlobalMem::new();
        let a = mem.alloc_f32(&vec![1.0; (n_rows * n_cols) as usize]);
        let x = mem.alloc_f32(&vec![2.0; n_cols as usize]);
        let tmp = mem.alloc_zeroed(n_rows);
        let mut gpu = Gpu::new(config.clone());
        let stats = gpu
            .launch(
                kernel,
                launch,
                &[Arg::Buf(a), Arg::Buf(x), Arg::Buf(tmp)],
                &mut mem,
            )
            .unwrap();
        // Correctness: every row sums to 2 * NY.
        assert!(mem.read_f32(tmp).iter().all(|&v| v == 2.0 * n_cols as f32));
        stats
    };
    let base = run(&ck.original);
    let catt = run(&ck.transformed);

    println!("=== simulation ===");
    println!(
        "baseline: {:>9} cycles, L1D hit rate {:5.1}%, {} off-chip requests",
        base.cycles,
        100.0 * base.l1_hit_rate(),
        base.offchip_requests
    );
    println!(
        "CATT:     {:>9} cycles, L1D hit rate {:5.1}%, {} off-chip requests",
        catt.cycles,
        100.0 * catt.l1_hit_rate(),
        catt.offchip_requests
    );
    println!("speedup:  {:.2}x", base.cycles as f64 / catt.cycles as f64);
}
