//! The paper's headline scenario (§5.1): an application with *phases* of
//! different cache contention — ATAX's divergent kernel 1 vs its coalesced
//! kernel 2 — where CATT's per-loop decisions beat BFTT's single fixed
//! setting, and both beat the unthrottled baseline.
//!
//! Run with `cargo run --release --example atax_phases`.

use catt_repro::workloads::{self, registry};

fn main() {
    let w = registry::find("ATAX").expect("ATAX in registry");
    for (label, config) in [
        (
            "Max. L1D (128 KB)",
            workloads::harness::eval_config_max_l1d(),
        ),
        ("32 KB L1D", workloads::harness::eval_config_32kb_l1d()),
    ] {
        println!("=== {label} ===");
        let base = workloads::run_baseline(&w, &config).expect("baseline runs");
        let (catt, app) = workloads::run_catt(&w, &config).expect("CATT compiles and runs");
        let (bftt, sweep) = workloads::run_bftt(&w, &config).expect("BFTT sweep succeeds");

        for ck in &app.kernels {
            let a = &ck.analysis;
            let tlps: Vec<(u32, u32)> = a
                .loops
                .iter()
                .map(|l| l.tlp(a.warps_per_tb, a.plan.resident_tbs))
                .collect();
            println!(
                "  {}: baseline TLP {:?}, CATT per-loop TLPs {:?}",
                a.kernel_name,
                a.baseline_tlp(),
                tlps
            );
        }
        let best = sweep.best_candidate();
        println!(
            "  BFTT fixed setting: ({}, {}) out of {} candidates",
            best.warps,
            best.tbs,
            sweep.candidates.len()
        );
        println!(
            "  cycles: baseline {:>9}  BFTT {:>9}  CATT {:>9}",
            base.cycles(),
            bftt.cycles(),
            catt.cycles()
        );
        println!(
            "  speedup over baseline: BFTT {:.2}x, CATT {:.2}x\n",
            base.cycles() as f64 / bftt.cycles() as f64,
            base.cycles() as f64 / catt.cycles() as f64,
        );
    }
}
