//! The TLP / cache-footprint trade-off of paper Fig. 3, from the library
//! API: for `L1D-full-with-{4,8,16}-warps` microbenchmarks, sweep the
//! actual TLP and print normalized execution time per unit of work —
//! showing the U-shape the whole paper rests on (too few warps
//! underutilize, too many thrash).
//!
//! Run with `cargo run --release --example tlp_tradeoff`.

use catt_repro::sim::GpuConfig;
use catt_repro::workloads::micro;

fn main() {
    let mut config = GpuConfig::titan_v_1sm();
    config.l1_cap_bytes = Some(32 * 1024);
    // This sweep isolates L1 contention; a warm L2 would flatten the U.
    config.l2_kb = Some(0);
    let tlps = [1u32, 2, 4, 8, 16, 32];

    println!("normalized per-warp execution time (lower is better)");
    print!("{:>22}", "TLP:");
    for t in tlps {
        print!(" {t:>8}");
    }
    println!();
    for full_with in [4u32, 8, 16] {
        let results: Vec<f64> = tlps
            .iter()
            .map(|&t| {
                let s = micro::run(full_with, t, &config);
                s.cycles as f64 / t as f64 // per-warp time: work scales with TLP
            })
            .collect();
        let best = results.iter().cloned().fold(f64::INFINITY, f64::min);
        print!("L1D-full-with-{full_with:>2}-warps:");
        for r in &results {
            print!(" {:>8.2}", r / best);
        }
        println!();
    }
    println!();
    println!(
        "Each row is normalized to its own best point. The minimum sits at the\n\
         fill point (the TLP whose aggregate footprint exactly fills the L1D):\n\
         fewer warps leave latency unhidden, more warps evict each other's lines."
    );
}
